"""Warmup adaptation for HMC/NUTS: step size + diagonal mass matrix.

Two estimators compose into a :class:`WarmupAdapter`:

* **Nesterov dual averaging** (Hoffman & Gelman 2014, section 3.2) drives
  the leapfrog step size toward a target acceptance statistic (default
  0.8) from the per-draw ``accept_stat`` both kernels emit.  The
  averaged iterate ``step_size_bar`` is frozen in at the end of warmup.
* **Windowed diagonal mass-matrix estimation** (Stan / nutpie style):
  an initial fast buffer tunes only the step size, then doubling "slow"
  windows accumulate a streaming Welford variance of the unconstrained
  state; each window close snaps the metric to the regularized variance
  estimate and restarts dual averaging around the current step size.

The adapter operates on the packed flat state vector produced by the
PR-4 ``PackPlan``, so the metric is one contiguous array applied inside
``hmc_step_flat`` / ``nuts_step_flat`` with near-zero overhead.  The
tree fallback path splits the same flat estimate back into per-leaf
arrays (see ``GradBlockDriver``).

Everything here is deterministic given the RNG stream and fully
picklable via ``state_dict()`` / ``load_state()`` so mid-warmup
checkpoints resume bitwise-identically.
"""

from __future__ import annotations

import math

import numpy as np

_LOG_HALF = math.log(0.5)

DEFAULT_TARGET_ACCEPT = 0.8
DEFAULT_WARMUP = 500

# Stan's window geometry: fast init buffer (step size only), doubling
# slow windows from BASE_WINDOW, fast terminal buffer.
INIT_BUFFER = 75
TERM_BUFFER = 50
BASE_WINDOW = 25

# Regularization of the variance estimate toward the identity, matching
# Stan: (n / (n + 5)) * var + 1e-3 * (5 / (n + 5)).
_REG_PSEUDO_OBS = 5.0
_REG_SCALE = 1e-3


class DualAveraging:
    """Nesterov dual averaging on ``log(step_size)``.

    The closed-form iterates (tested in ``tests/runtime/test_adapt.py``):

    .. code-block:: text

        h_bar_t   = (1 - 1/(t + t0)) h_bar_{t-1}
                    + (target - accept_t) / (t + t0)
        log_eps_t = mu - sqrt(t)/gamma * h_bar_t
        eta_t     = t ** -kappa
        log_bar_t = eta_t * log_eps_t + (1 - eta_t) * log_bar_{t-1}
    """

    def __init__(
        self,
        target_accept: float = DEFAULT_TARGET_ACCEPT,
        gamma: float = 0.05,
        t0: float = 10.0,
        kappa: float = 0.75,
    ):
        self.target_accept = float(target_accept)
        self.gamma = float(gamma)
        self.t0 = float(t0)
        self.kappa = float(kappa)
        self.mu = 0.0
        self.log_step = 0.0
        self.log_step_bar = 0.0
        self.h_bar = 0.0
        self.count = 0

    def restart(self, step_size: float) -> None:
        """Re-anchor the optimum search around ``step_size``."""
        self.mu = math.log(10.0 * step_size)
        self.log_step = math.log(step_size)
        self.log_step_bar = 0.0
        self.h_bar = 0.0
        self.count = 0

    def update(self, accept_stat: float) -> float:
        """Fold in one acceptance statistic; return the new step size."""
        a = float(accept_stat)
        if not math.isfinite(a):
            a = 0.0
        a = min(1.0, max(0.0, a))
        self.count += 1
        frac = 1.0 / (self.count + self.t0)
        self.h_bar = (1.0 - frac) * self.h_bar + frac * (
            self.target_accept - a
        )
        self.log_step = self.mu - math.sqrt(self.count) / self.gamma * self.h_bar
        eta = self.count ** -self.kappa
        self.log_step_bar = (
            eta * self.log_step + (1.0 - eta) * self.log_step_bar
        )
        return math.exp(self.log_step)

    @property
    def step_size(self) -> float:
        return math.exp(self.log_step)

    @property
    def step_size_bar(self) -> float:
        return math.exp(self.log_step_bar)

    def state_dict(self) -> dict:
        return {
            "mu": self.mu,
            "log_step": self.log_step,
            "log_step_bar": self.log_step_bar,
            "h_bar": self.h_bar,
            "count": self.count,
        }

    def load_state(self, state: dict) -> None:
        self.mu = float(state["mu"])
        self.log_step = float(state["log_step"])
        self.log_step_bar = float(state["log_step_bar"])
        self.h_bar = float(state["h_bar"])
        self.count = int(state["count"])


class WelfordVariance:
    """Streaming mean/variance over a flat state vector."""

    def __init__(self, dim: int):
        self.count = 0
        self.mean = np.zeros(dim, dtype=np.float64)
        self.m2 = np.zeros(dim, dtype=np.float64)

    def observe(self, x: np.ndarray) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def variance(self) -> np.ndarray:
        if self.count < 2:
            return np.ones_like(self.m2)
        return self.m2 / (self.count - 1)

    def regularized_variance(self) -> np.ndarray:
        """Sample variance shrunk toward a small multiple of identity."""
        n = float(self.count)
        if self.count < 2:
            return np.ones_like(self.m2)
        w = n / (n + _REG_PSEUDO_OBS)
        return w * self.variance() + _REG_SCALE * (1.0 - w) * _REG_PSEUDO_OBS

    def state_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean.copy(),
            "m2": self.m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "WelfordVariance":
        self = cls(len(state["mean"]))
        self.count = int(state["count"])
        self.mean = np.array(state["mean"], dtype=np.float64, copy=True)
        self.m2 = np.array(state["m2"], dtype=np.float64, copy=True)
        return self


class DiagMetric:
    """Diagonal inverse mass matrix ``M^-1`` plus the momentum scale.

    ``inv_mass`` is the regularized variance estimate (the diagonal of
    ``M^-1``); momenta are drawn ``p = std_normal * momentum_scale``
    with ``momentum_scale = 1/sqrt(inv_mass)`` so ``p ~ N(0, M)``.
    """

    __slots__ = ("inv_mass", "momentum_scale")

    def __init__(self, inv_mass: np.ndarray):
        self.inv_mass = np.asarray(inv_mass, dtype=np.float64)
        self.momentum_scale = 1.0 / np.sqrt(self.inv_mass)


def mass_matrix_windows(
    warmup: int,
    init_buffer: int = INIT_BUFFER,
    term_buffer: int = TERM_BUFFER,
    base_window: int = BASE_WINDOW,
) -> list:
    """Return ``(start, end)`` sweep ranges of the slow windows.

    At each window ``end`` the metric snaps to that window's variance
    estimate.  When ``warmup`` is shorter than the standard
    75 + 25 + 50 geometry the buffers shrink proportionally (15% init,
    10% terminal); a warmup too short for even one window adapts the
    step size only.
    """
    warmup = int(warmup)
    if warmup <= 0:
        return []
    if init_buffer + base_window + term_buffer > warmup:
        init_buffer = int(0.15 * warmup)
        term_buffer = int(0.10 * warmup)
        base_window = warmup - init_buffer - term_buffer
        if base_window < 2:
            return []
    windows = []
    start = init_buffer
    size = base_window
    last = warmup - term_buffer
    while start < last:
        end = start + size
        if end + 2 * size > last:
            # The next (doubled) window would not fit: extend this one
            # to cover the remaining slow-adaptation span.
            end = last
        windows.append((start, end))
        start = end
        size *= 2
    return windows


def find_reasonable_step_size(
    log_accept, init: float = 1.0, max_doublings: int = 50
) -> float:
    """Bracket a step size whose one-leapfrog accept ratio is ~0.5.

    ``log_accept(eps)`` evaluates the log acceptance ratio of a single
    leapfrog step of size ``eps`` from the current point with a fixed
    momentum (drawn once by the caller, so this consumes no RNG).  The
    step doubles or halves until the ratio crosses ``log(0.5)``
    (Hoffman & Gelman 2014, algorithm 4).
    """

    def finite(v: float) -> float:
        v = float(v)
        return v if math.isfinite(v) else -math.inf

    eps = float(init)
    la = finite(log_accept(eps))
    direction = 1.0 if la > _LOG_HALF else -1.0
    for _ in range(max_doublings):
        if direction * (la - _LOG_HALF) <= 0.0:
            break
        eps *= 2.0 ** direction
        la = finite(log_accept(eps))
    return eps


class WarmupAdapter:
    """Per-chain warmup state: step size + windowed diagonal metric.

    Lifecycle (driven by ``GradBlockDriver`` during warmup sweeps):

    1. ``initialize(eps)`` with the reasonable-step-size result.
    2. ``observe(accept_stat, z_flat)`` once per warmup sweep, after
       the draw; updates dual averaging, feeds the Welford window, and
       snaps the metric on window close.
    3. ``finalize()`` at the end of warmup freezes
       ``step_size = step_size_bar`` and stops adaptation.

    ``metric_version`` increments on every metric change so the tree
    fallback path knows when to re-split the flat estimate.
    """

    def __init__(
        self,
        warmup: int,
        target_accept: float = DEFAULT_TARGET_ACCEPT,
        adapt_metric: bool = True,
    ):
        self.warmup = int(warmup)
        self.target_accept = float(target_accept)
        self.windows = mass_matrix_windows(self.warmup) if adapt_metric else []
        self.da = DualAveraging(self.target_accept)
        self.welford = None
        self.metric = None
        self.step_size = None
        self.sweep = 0
        self.window_index = 0
        self.metric_version = 0
        self.initialized = False
        self.finalized = False

    # -- lifecycle ---------------------------------------------------

    def initialize(self, step_size: float) -> None:
        self.step_size = float(step_size)
        self.da.restart(self.step_size)
        self.initialized = True

    def observe(self, accept_stat: float, z_flat) -> None:
        if self.finalized:
            return
        self.step_size = self.da.update(accept_stat)
        s = self.sweep
        if self.window_index < len(self.windows) and z_flat is not None:
            start, end = self.windows[self.window_index]
            if s >= start:
                if self.welford is None:
                    self.welford = WelfordVariance(len(z_flat))
                self.welford.observe(np.asarray(z_flat, dtype=np.float64))
                if s + 1 == end:
                    self.metric = DiagMetric(
                        self.welford.regularized_variance()
                    )
                    self.metric_version += 1
                    self.welford = None
                    self.window_index += 1
                    self.da.restart(self.step_size)
        self.sweep = s + 1

    def finalize(self) -> None:
        if self.finalized:
            return
        if self.da.count > 0:
            self.step_size = self.da.step_size_bar
        self.finalized = True

    @property
    def step_size_bar(self) -> float:
        return self.da.step_size_bar if self.da.count > 0 else (
            self.step_size if self.step_size is not None else 0.0
        )

    @property
    def inv_mass(self):
        return None if self.metric is None else self.metric.inv_mass

    # -- checkpointing -----------------------------------------------

    def state_dict(self) -> dict:
        return {
            "warmup": self.warmup,
            "target_accept": self.target_accept,
            "da": self.da.state_dict(),
            "welford": (
                None if self.welford is None else self.welford.state_dict()
            ),
            "inv_mass": (
                None if self.metric is None else self.metric.inv_mass.copy()
            ),
            "step_size": self.step_size,
            "sweep": self.sweep,
            "window_index": self.window_index,
            "metric_version": self.metric_version,
            "initialized": self.initialized,
            "finalized": self.finalized,
            "n_windows": len(self.windows),
        }

    def load_state(self, state: dict) -> None:
        self.da.load_state(state["da"])
        self.welford = (
            None
            if state["welford"] is None
            else WelfordVariance.from_state(state["welford"])
        )
        self.metric = (
            None
            if state["inv_mass"] is None
            else DiagMetric(state["inv_mass"])
        )
        self.step_size = (
            None if state["step_size"] is None else float(state["step_size"])
        )
        self.sweep = int(state["sweep"])
        self.window_index = int(state["window_index"])
        self.metric_version = int(state["metric_version"])
        self.initialized = bool(state["initialized"])
        self.finalized = bool(state["finalized"])
