"""Hamiltonian Monte Carlo driver over a block of transformed variables.

The generated code supplies two callables -- the block log density and
its gradient, both on the *constrained* space -- and the driver runs
leapfrog on the unconstrained space, chain-ruling through the
element-wise transforms and adding their log-Jacobians (the standard
change of variables).  This is the library half of the paper's HMC
update; the Leapfrog integrator here corresponds to the ~30 lines of C
the paper cites for adding HMC (Section 7.1).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.accept import mh_accept
from repro.runtime.mcmc.tree import (
    Tree,
    tree_copy,
    tree_dot,
    tree_gaussian,
)
from repro.runtime.transforms import Transform


class TransformedLogDensity:
    """log p and grad log p on the unconstrained space of a block."""

    def __init__(self, ll_fn, grad_fn, transforms: dict[str, Transform]):
        self._ll = ll_fn
        self._grad = grad_fn
        self.transforms = transforms

    def constrain(self, z: Tree) -> Tree:
        return {
            k: self.transforms[k].to_constrained(v) for k, v in z.items()
        }

    def unconstrain(self, x: Tree) -> Tree:
        return {
            k: np.array(self.transforms[k].to_unconstrained(v), dtype=np.float64)
            for k, v in x.items()
        }

    def logpdf(self, z: Tree) -> float:
        x = self.constrain(z)
        lp = float(self._ll(x))
        for k, t in self.transforms.items():
            lp += float(np.sum(t.log_jacobian(z[k])))
        return lp

    def grad(self, z: Tree) -> Tree:
        x = self.constrain(z)
        gx = self._grad(x)
        out: Tree = {}
        # Diverged trajectories can produce inf/NaN here; the leapfrog
        # step that consumes them is rejected by the acceptance test.
        with np.errstate(over="ignore", invalid="ignore"):
            for k, t in self.transforms.items():
                out[k] = np.asarray(
                    gx[k], dtype=np.float64
                ) * t.grad_constrained_wrt_z(z[k]) + t.grad_log_jacobian(z[k])
        return out


def leapfrog(target: TransformedLogDensity, z: Tree, p: Tree, step: float, n: int):
    """Standard leapfrog integration; returns (z', p').

    Divergent trajectories produce inf/NaN positions; arithmetic on them
    is left to propagate (quietly) and the resulting state is rejected
    by the acceptance test.
    """
    z = tree_copy(z)
    p = tree_copy(p)
    with np.errstate(invalid="ignore", over="ignore"):
        grad = target.grad(z)
        for _ in range(n):
            for k in p:
                p[k] = p[k] + 0.5 * step * grad[k]
            for k in z:
                z[k] = z[k] + step * p[k]
            grad = target.grad(z)
            for k in p:
                p[k] = p[k] + 0.5 * step * grad[k]
    return z, p


#: |Delta H| above which a trajectory is flagged divergent (matches the
#: NUTS ``_DELTA_MAX`` convention).
DIVERGENCE_THRESHOLD = 1000.0


def hmc_step(
    rng,
    target: TransformedLogDensity,
    z: Tree,
    step_size: float,
    n_steps: int,
    info: dict | None = None,
) -> tuple[Tree, bool]:
    """One HMC transition; returns (next position, accepted?).

    When ``info`` is supplied it is filled with the per-transition
    telemetry record: ``log_alpha``, the ``nan`` flag (NaN-rejected
    trajectory), the proposal's Hamiltonian ``energy``, a ``divergent``
    flag (energy error beyond :data:`DIVERGENCE_THRESHOLD` or
    non-finite), and ``n_leapfrog``.
    """
    p0 = tree_gaussian(rng, z)
    lp0 = target.logpdf(z)
    z1, p1 = leapfrog(target, z, p0, step_size, n_steps)
    lp1 = target.logpdf(z1)
    energy0 = -(lp0 - 0.5 * tree_dot(p0, p0))
    energy1 = -(lp1 - 0.5 * tree_dot(p1, p1))
    log_alpha = energy0 - energy1
    accepted = mh_accept(rng, log_alpha)
    if info is not None:
        info["log_alpha"] = float(log_alpha)
        info["nan"] = bool(np.isnan(log_alpha))
        info["energy"] = float(energy1)
        info["divergent"] = bool(
            not np.isfinite(log_alpha) or abs(log_alpha) > DIVERGENCE_THRESHOLD
        )
        info["n_leapfrog"] = n_steps
        info["accepted"] = accepted
    if accepted:
        return z1, True
    return z, False
