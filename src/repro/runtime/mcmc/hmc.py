"""Hamiltonian Monte Carlo driver over a block of transformed variables.

The generated code supplies two callables -- the block log density and
its gradient, both on the *constrained* space -- and the driver runs
leapfrog on the unconstrained space, chain-ruling through the
element-wise transforms and adding their log-Jacobians (the standard
change of variables).  This is the library half of the paper's HMC
update; the Leapfrog integrator here corresponds to the ~30 lines of C
the paper cites for adding HMC (Section 7.1).

Two state representations coexist:

- :class:`TransformedLogDensity` works on dict-of-arrays ``Tree``
  points, one entry per block variable -- the general path, required
  for ragged blocks and non-elementwise transforms.
- :class:`FlatLogDensity` works on one packed contiguous 1-D vector
  laid out by a compile-time :class:`~repro.core.lowmm.size_inference.PackPlan`;
  leapfrog then reduces to whole-vector in-place axpy ops
  (:func:`hmc_step_flat`), the constrained point and log-Jacobian are
  computed once per distinct point and shared between value and
  gradient, and a fused value+gradient compiled call (when available)
  serves both in a single evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.accept import mh_accept
from repro.runtime.mcmc.tree import (
    Tree,
    tree_axpy_,
    tree_copy,
    tree_copy_into,
    tree_dot,
    tree_gaussian,
    tree_metric_axpy_,
    tree_metric_dot,
    tree_metric_scale_,
)
from repro.runtime.transforms import Transform


class TransformedLogDensity:
    """log p and grad log p on the unconstrained space of a block."""

    def __init__(self, ll_fn, grad_fn, transforms: dict[str, Transform]):
        self._ll = ll_fn
        self._grad = grad_fn
        self.transforms = transforms
        # The constrained point + summed log-Jacobian at the last
        # unconstrained point seen: ``logpdf`` then ``grad`` at the same
        # ``z`` (every trajectory endpoint) pays the transforms once.
        self._cache_z: Tree | None = None
        self._cache_x: Tree | None = None
        self._cache_ljac: float = 0.0

    def constrain(self, z: Tree) -> Tree:
        return {
            k: self.transforms[k].to_constrained(v) for k, v in z.items()
        }

    def unconstrain(self, x: Tree) -> Tree:
        return {
            k: np.array(self.transforms[k].to_unconstrained(v), dtype=np.float64)
            for k, v in x.items()
        }

    def _constrained(self, z: Tree) -> tuple[Tree, float]:
        """``(constrain(z), sum log-Jacobian)``, cached by content.

        The cache key is a copy of ``z`` (identity alone is unsafe: the
        in-place integrator mutates positions between calls).  NaN
        positions never compare equal, so diverged points recompute --
        which is the correct, conservative behaviour.
        """
        zc = self._cache_z
        if (
            zc is not None
            and len(zc) == len(z)
            and all(np.array_equal(zc[k], z[k]) for k in z)
        ):
            return self._cache_x, self._cache_ljac
        x: Tree = {}
        ljac = 0.0
        for k, t in self.transforms.items():
            x[k] = t.to_constrained(z[k])
            ljac += float(np.sum(t.log_jacobian(z[k])))
        self._cache_z = tree_copy(z)
        self._cache_x = x
        self._cache_ljac = ljac
        return x, ljac

    def logpdf(self, z: Tree) -> float:
        x, ljac = self._constrained(z)
        return float(self._ll(x)) + ljac

    def grad(self, z: Tree) -> Tree:
        x, _ = self._constrained(z)
        gx = self._grad(x)
        out: Tree = {}
        # Diverged trajectories can produce inf/NaN here; the leapfrog
        # step that consumes them is rejected by the acceptance test.
        with np.errstate(over="ignore", invalid="ignore"):
            for k, t in self.transforms.items():
                out[k] = np.asarray(
                    gx[k], dtype=np.float64
                ) * t.grad_constrained_wrt_z(z[k]) + t.grad_log_jacobian(z[k])
        return out


def leapfrog(
    target: TransformedLogDensity,
    z: Tree,
    p: Tree,
    step: float,
    n: int,
    work: tuple[Tree, Tree] | None = None,
    metric=None,
):
    """Standard leapfrog integration; returns (z', p').

    The inputs are never mutated: the trajectory runs on ``work`` (a
    pair of preallocated position/momentum trees, reused across calls by
    the driver) or on fresh copies when ``work`` is omitted.  Divergent
    trajectories produce inf/NaN positions; arithmetic on them is left
    to propagate (quietly) and the resulting state is rejected by the
    acceptance test.  ``metric`` (a
    :class:`~repro.runtime.mcmc.tree.TreeMetric`, or ``None`` for the
    identity) scales the position drift by ``M^-1``; the ``None``
    branch is the exact pre-adaptation code path.
    """
    if work is None:
        z = tree_copy(z)
        p = tree_copy(p)
    else:
        zb, pb = work
        z = tree_copy_into(zb, z)
        p = tree_copy_into(pb, p)
    half = 0.5 * step
    with np.errstate(invalid="ignore", over="ignore"):
        grad = target.grad(z)
        for _ in range(n):
            tree_axpy_(p, grad, half)
            if metric is None:
                tree_axpy_(z, p, step)
            else:
                tree_metric_axpy_(z, p, metric.inv_mass, step)
            grad = target.grad(z)
            tree_axpy_(p, grad, half)
    return z, p


#: |Delta H| above which a trajectory is flagged divergent (matches the
#: NUTS ``_DELTA_MAX`` convention).
DIVERGENCE_THRESHOLD = 1000.0


def _fill_info(info: dict, log_alpha, energy1, n_leapfrog: int, accepted) -> None:
    la = float(log_alpha)
    info["log_alpha"] = la
    info["nan"] = bool(np.isnan(la))
    info["energy"] = float(energy1)
    info["divergent"] = bool(
        not np.isfinite(la) or abs(la) > DIVERGENCE_THRESHOLD
    )
    info["n_leapfrog"] = n_leapfrog
    info["accepted"] = accepted
    # The same per-draw acceptance statistic NUTS emits -- min(1, alpha)
    # -- so warmup adaptation consumes one uniform field from either
    # kernel (NaN trajectories count as 0).
    if np.isnan(la):
        info["accept_stat"] = 0.0
    elif la >= 0.0:
        info["accept_stat"] = 1.0
    else:
        info["accept_stat"] = float(np.exp(la))


def hmc_step(
    rng,
    target: TransformedLogDensity,
    z: Tree,
    step_size: float,
    n_steps: int,
    info: dict | None = None,
    work: tuple[Tree, Tree] | None = None,
    metric=None,
) -> tuple[Tree, bool]:
    """One HMC transition; returns (next position, accepted?).

    When ``info`` is supplied it is filled with the per-transition
    telemetry record: ``log_alpha``, the ``nan`` flag (NaN-rejected
    trajectory), the proposal's Hamiltonian ``energy``, a ``divergent``
    flag (energy error beyond :data:`DIVERGENCE_THRESHOLD` or
    non-finite), ``n_leapfrog``, and the dual-averaging ``accept_stat``.
    ``work`` forwards preallocated trajectory buffers to
    :func:`leapfrog`.  ``metric`` (``None`` = identity, the exact
    pre-adaptation path) supplies the diagonal mass matrix; the
    momentum is scaled *after* the standard-normal draw so the RNG
    stream is identical with and without a metric.
    """
    p0 = tree_gaussian(rng, z)
    if metric is not None:
        tree_metric_scale_(p0, metric.momentum_scale)
    lp0 = target.logpdf(z)
    z1, p1 = leapfrog(target, z, p0, step_size, n_steps, work=work,
                      metric=metric)
    lp1 = target.logpdf(z1)
    if metric is None:
        kin0 = 0.5 * tree_dot(p0, p0)
        kin1 = 0.5 * tree_dot(p1, p1)
    else:
        kin0 = 0.5 * tree_metric_dot(p0, metric.inv_mass)
        kin1 = 0.5 * tree_metric_dot(p1, metric.inv_mass)
    energy0 = -(lp0 - kin0)
    energy1 = -(lp1 - kin1)
    log_alpha = energy0 - energy1
    accepted = mh_accept(rng, log_alpha)
    if info is not None:
        _fill_info(info, log_alpha, energy1, n_steps, accepted)
    if accepted:
        return z1, True
    return z, False


# ----------------------------------------------------------------------
# Flat-state path: one packed 1-D vector, whole-vector leapfrog.
# ----------------------------------------------------------------------


class FlatLogDensity:
    """log p / grad log p on a packed 1-D unconstrained state vector.

    The compiled block functions read the *constrained* state; this
    class owns one flat constrained buffer whose per-variable reshaped
    views (:attr:`x_views`) the driver splices into the evaluation
    scope once -- unpacking at the compiled-function boundary is then a
    slice-wise transform into those views, with no dict or array
    construction per call.

    Per distinct unconstrained point the transforms run once
    (``_ensure_point``), shared by value, gradient, and the fused
    value+gradient compiled call (``ll_grad_fn``, when the compiler
    emitted one).  ``invalidate`` must be called whenever the rest of
    the environment may have changed (the start of every driver step):
    the cached density values are conditional on it.
    """

    def __init__(
        self,
        ll_fn,
        grad_fn,
        transforms: dict[str, Transform],
        layout,
        ll_grad_fn=None,
    ):
        self.layout = layout
        self.transforms = transforms
        self._ll = ll_fn            # () -> float, reads the live views
        self._grad = grad_fn        # () -> {name: d ll / d constrained}
        self._ll_grad = ll_grad_fn  # () -> (float, {name: adjoint}) | None
        n = layout.total
        self._x = np.zeros(n, dtype=np.float64)
        #: Per-variable reshaped views into the flat constrained buffer.
        self.x_views = layout.unpack_views(self._x)
        self._z = np.full(n, np.nan)
        self._g = np.zeros(n, dtype=np.float64)
        self._ljac = 0.0
        self._lp = 0.0
        self._have_point = False
        self._have_lp = False
        self._have_grad = False

    def invalidate(self) -> None:
        """Drop every cached evaluation (the environment may have moved)."""
        self._have_point = False
        self._have_lp = False
        self._have_grad = False

    def unconstrain_into(self, env: dict, out: np.ndarray) -> np.ndarray:
        """Pack the environment's constrained values as a flat z vector."""
        for s in self.layout.slots:
            t = self.transforms[s.name]
            out[s.slice] = np.asarray(
                t.to_unconstrained(env[s.name]), dtype=np.float64
            ).reshape(-1)
        return out

    def constrain_point(self, z: np.ndarray) -> dict[str, np.ndarray]:
        """The constrained views at ``z`` (refreshing the cache if needed)."""
        self._ensure_point(z)
        return self.x_views

    def _ensure_point(self, z: np.ndarray) -> None:
        if self._have_point and np.array_equal(z, self._z):
            return
        ljac = 0.0
        for s in self.layout.slots:
            t = self.transforms[s.name]
            zi = z[s.slice]
            xi = self.x_views[s.name]
            xi[...] = t.to_constrained(zi.reshape(s.shape))
            ljac += float(np.sum(t.log_jacobian(zi)))
        self._z[...] = z
        self._ljac = ljac
        self._have_point = True
        self._have_lp = False
        self._have_grad = False

    def _chain(self, gx: dict) -> None:
        """Constrained-space adjoints -> flat unconstrained gradient."""
        g = self._g
        with np.errstate(over="ignore", invalid="ignore"):
            for s in self.layout.slots:
                t = self.transforms[s.name]
                zi = self._z[s.slice]
                gi = np.asarray(gx[s.name], dtype=np.float64).reshape(-1)
                g[s.slice] = (
                    gi * np.asarray(t.grad_constrained_wrt_z(zi)).reshape(-1)
                    + np.asarray(t.grad_log_jacobian(zi)).reshape(-1)
                )
        self._have_grad = True

    def _eval_fused(self) -> None:
        ll_raw, gx = self._ll_grad()
        self._lp = ll_raw + self._ljac
        self._have_lp = True
        self._chain(gx)

    def value(self, z: np.ndarray) -> float:
        self._ensure_point(z)
        if not self._have_lp:
            self._lp = float(self._ll()) + self._ljac
            self._have_lp = True
        return self._lp

    def grad(self, z: np.ndarray) -> np.ndarray:
        """The gradient at ``z``; returns the *internal* buffer (read it
        before the next evaluation, or copy).

        Prefers the fused compiled call even for gradient-only requests:
        the fused body evaluates the shared forward pass once, which is
        cheaper than the standalone adjoint function re-deriving it, and
        the log density rides along for free (cached for a later
        ``value`` at the same point).
        """
        self._ensure_point(z)
        if not self._have_grad:
            if self._ll_grad is not None:
                self._eval_fused()
            else:
                self._chain(self._grad())
        return self._g

    def value_and_grad(self, z: np.ndarray) -> tuple[float, np.ndarray]:
        """Both in one pass -- a single compiled call when fused code is
        available, the separate pair otherwise (identical numerics)."""
        self._ensure_point(z)
        if self._have_lp and self._have_grad:
            return self._lp, self._g
        if self._ll_grad is not None:
            self._eval_fused()
            return self._lp, self._g
        return self.value(z), self.grad(z)


def flat_gaussian(rng, layout, out: np.ndarray) -> np.ndarray:
    """Standard-normal momentum on the packed vector.

    Draws slot by slot with the state's original shapes, consuming the
    RNG stream exactly as :func:`~repro.runtime.mcmc.tree.tree_gaussian`
    does on the tree path.
    """
    for s in layout.slots:
        out[s.slice] = np.asarray(rng.standard_normal(s.shape)).reshape(-1)
    return out


def hmc_step_flat(
    rng,
    target: FlatLogDensity,
    z: np.ndarray,
    step_size: float,
    n_steps: int,
    info: dict | None = None,
    work: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    metric=None,
) -> tuple[np.ndarray, bool]:
    """One HMC transition on the packed flat state; returns (z', accepted?).

    ``z`` is never mutated.  The whole trajectory runs in place on three
    preallocated vectors (position, momentum, scratch): each leapfrog
    step is two axpy updates, and the endpoints evaluate value and
    gradient in one fused call.  Telemetry matches :func:`hmc_step`.
    ``metric`` (a :class:`~repro.runtime.mcmc.adapt.DiagMetric`, or
    ``None`` for the identity) is one contiguous array: the momentum is
    scaled after the standard-normal draw (same RNG stream either way)
    and the drift/kinetic terms pick up ``M^-1`` elementwise; the
    ``None`` branch is the exact pre-adaptation code path.
    """
    n = z.shape[0]
    if work is None:
        work = (np.empty(n), np.empty(n), np.empty(n))
    z1, p, scratch = work
    flat_gaussian(rng, target.layout, out=p)
    if metric is None:
        kin0 = 0.5 * float(np.dot(p, p))
    else:
        np.multiply(p, metric.momentum_scale, out=p)
        np.multiply(p, metric.inv_mass, out=scratch)
        kin0 = 0.5 * float(np.dot(p, scratch))
    lp0, g = target.value_and_grad(z)
    np.copyto(z1, z)
    half = 0.5 * step_size
    lp1 = lp0
    with np.errstate(invalid="ignore", over="ignore"):
        for i in range(n_steps):
            np.multiply(g, half, out=scratch)
            np.add(p, scratch, out=p)
            if metric is None:
                np.multiply(p, step_size, out=scratch)
            else:
                np.multiply(p, metric.inv_mass, out=scratch)
                np.multiply(scratch, step_size, out=scratch)
            np.add(z1, scratch, out=z1)
            if i == n_steps - 1:
                lp1, g = target.value_and_grad(z1)
            else:
                g = target.grad(z1)
            np.multiply(g, half, out=scratch)
            np.add(p, scratch, out=p)
        if metric is None:
            kin1 = 0.5 * float(np.dot(p, p))
        else:
            np.multiply(p, metric.inv_mass, out=scratch)
            kin1 = 0.5 * float(np.dot(p, scratch))
    energy0 = -(lp0 - kin0)
    energy1 = -(lp1 - kin1)
    log_alpha = energy0 - energy1
    accepted = mh_accept(rng, log_alpha)
    if info is not None:
        _fill_info(info, log_alpha, energy1, n_steps, accepted)
    if accepted:
        return z1, True
    return z, False
