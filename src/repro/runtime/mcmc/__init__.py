"""MCMC library code for the base updates (paper Section 4.4).

Generated code provides the model-specific primitives (likelihood
evaluation, closed-form conditionals, gradients); everything else --
leapfrog integration, the NUTS tree, slice stepping-out, elliptical
slice rotation, acceptance-ratio bookkeeping -- is library code, which
is exactly the paper's division ("the rest of the functionality can be
supported as library code").
"""

from repro.runtime.mcmc.accept import mh_accept
from repro.runtime.mcmc.tree import (
    tree_add,
    tree_axpy,
    tree_copy,
    tree_dot,
    tree_scale,
)

__all__ = [
    "mh_accept",
    "tree_add",
    "tree_axpy",
    "tree_copy",
    "tree_dot",
    "tree_scale",
]
