"""Metropolis-Hastings proposal drivers.

The ``Prop`` base update: either a symmetric Gaussian random walk
(continuous variables) or a user-supplied proposal callable returning
``(candidate, log_q_ratio)`` where ``log_q_ratio = log q(x'|x) -
log q(x|x')`` enters the acceptance ratio with a negative sign.

Both steppers take an optional ``info`` dict and fill it with the
per-proposal telemetry record -- ``log_alpha`` and the ``nan`` flag for
NaN-rejected proposals (which :func:`~repro.runtime.mcmc.accept
.mh_accept` otherwise swallows silently).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.accept import mh_accept, mh_accept_mask


def _note(info, log_alpha: float, accepted: bool) -> None:
    if info is not None:
        info["log_alpha"] = float(log_alpha)
        info["nan"] = bool(np.isnan(log_alpha))
        info["accepted"] = accepted


def random_walk_step(rng, logp, x0, scale: float = 0.5, info: dict | None = None):
    """Symmetric Gaussian random-walk MH on a scalar or array value."""
    x0 = np.asarray(x0, dtype=np.float64)
    x1 = x0 + scale * rng.standard_normal(x0.shape)
    log_alpha = logp(x1) - logp(x0)
    accepted = mh_accept(rng, log_alpha)
    _note(info, log_alpha, accepted)
    if accepted:
        return x1, True
    return x0, False


def user_proposal_step(rng, logp, x0, proposal, info: dict | None = None):
    """MH with a user proposal: ``proposal(x, rng) -> (x', log_q_ratio)``."""
    x1, log_q_ratio = proposal(x0, rng)
    log_alpha = logp(x1) - logp(x0) - log_q_ratio
    accepted = mh_accept(rng, log_alpha)
    _note(info, log_alpha, accepted)
    if accepted:
        return x1, True
    return x0, False


def random_walk_sweep(
    rng, logp_all, x0: np.ndarray, scale: float = 0.5, info: dict | None = None
):
    """One Gaussian random-walk MH sweep over every element lane at once.

    ``logp_all`` maps a full lane-value vector to the vector of per-lane
    conditional log densities.  The lanes are conditionally independent
    (the compiler's batching eligibility check guarantees it), so two
    evaluations -- one at the current values, one with every lane's
    candidate written -- score all proposals, and a single uniform vector
    decides acceptance per lane.  Returns ``(x_next, accept_mask)``;
    ``info`` (when supplied) receives the per-lane ``log_alpha`` and
    ``nan`` arrays.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    x1 = x0 + scale * rng.standard_normal(x0.shape)
    lp0 = logp_all(x0)
    lp1 = logp_all(x1)
    log_alpha = lp1 - lp0
    u = rng.uniform(size=x0.shape[0])
    accepted = mh_accept_mask(u, log_alpha)
    if info is not None:
        info["log_alpha"] = log_alpha
        info["nan"] = np.isnan(log_alpha)
        info["accepted"] = accepted
    return np.where(accepted, x1, x0), accepted
