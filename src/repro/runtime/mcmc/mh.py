"""Metropolis-Hastings proposal drivers.

The ``Prop`` base update: either a symmetric Gaussian random walk
(continuous variables) or a user-supplied proposal callable returning
``(candidate, log_q_ratio)`` where ``log_q_ratio = log q(x'|x) -
log q(x|x')`` enters the acceptance ratio with a negative sign.

Both steppers take an optional ``info`` dict and fill it with the
per-proposal telemetry record -- ``log_alpha`` and the ``nan`` flag for
NaN-rejected proposals (which :func:`~repro.runtime.mcmc.accept
.mh_accept` otherwise swallows silently).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.accept import mh_accept


def _note(info, log_alpha: float, accepted: bool) -> None:
    if info is not None:
        info["log_alpha"] = float(log_alpha)
        info["nan"] = bool(np.isnan(log_alpha))
        info["accepted"] = accepted


def random_walk_step(rng, logp, x0, scale: float = 0.5, info: dict | None = None):
    """Symmetric Gaussian random-walk MH on a scalar or array value."""
    x0 = np.asarray(x0, dtype=np.float64)
    x1 = x0 + scale * rng.standard_normal(x0.shape)
    log_alpha = logp(x1) - logp(x0)
    accepted = mh_accept(rng, log_alpha)
    _note(info, log_alpha, accepted)
    if accepted:
        return x1, True
    return x0, False


def user_proposal_step(rng, logp, x0, proposal, info: dict | None = None):
    """MH with a user proposal: ``proposal(x, rng) -> (x', log_q_ratio)``."""
    x1, log_q_ratio = proposal(x0, rng)
    log_alpha = logp(x1) - logp(x0) - log_q_ratio
    accepted = mh_accept(rng, log_alpha)
    _note(info, log_alpha, accepted)
    if accepted:
        return x1, True
    return x0, False
