"""Dict-of-arrays ("tree") arithmetic for multi-variable updates.

A gradient-based update over a block of variables works on the
product space; representing points as ``{name: ndarray}`` keeps the
driver code independent of how many variables the block holds.
Scalars are carried as 0-d arrays.
"""

from __future__ import annotations

import numpy as np

Tree = dict


def tree_copy(t: Tree) -> Tree:
    return {k: np.array(v, dtype=np.float64, copy=True) for k, v in t.items()}


def tree_copy_into(dst: Tree, src: Tree) -> Tree:
    """Copy ``src`` into the preallocated buffers of ``dst`` (returned)."""
    for k, v in src.items():
        np.copyto(dst[k], v)
    return dst


def tree_empty_like(t: Tree) -> Tree:
    """Uninitialised buffers shaped like ``t`` (0-d arrays for scalars)."""
    return {k: np.empty(np.shape(v), dtype=np.float64) for k, v in t.items()}


def tree_add(a: Tree, b: Tree) -> Tree:
    return {k: a[k] + b[k] for k in a}


def tree_scale(a: Tree, s: float) -> Tree:
    return {k: s * v for k, v in a.items()}


def tree_axpy(a: Tree, x: Tree, alpha: float) -> Tree:
    """``a + alpha * x``."""
    return {k: a[k] + alpha * x[k] for k in a}


def tree_axpy_(a: Tree, x: Tree, alpha: float) -> Tree:
    """In-place ``a += alpha * x`` via ``out=`` ufuncs.

    Entries that are not writable arrays (plain floats handed in by a
    caller) are rebound instead; either way the numerics match
    ``a[k] + alpha * x[k]`` bitwise.
    """
    for k in a:
        v = a[k]
        t = alpha * x[k]
        if isinstance(v, np.ndarray):
            np.add(v, t, out=v)
        else:
            a[k] = v + t
    return a


def tree_dot(a: Tree, b: Tree) -> float:
    return float(sum(np.sum(np.asarray(a[k]) * np.asarray(b[k])) for k in a))


def tree_gaussian(rng, like: Tree) -> Tree:
    return {k: rng.standard_normal(np.shape(v)) for k, v in like.items()}


# ----------------------------------------------------------------------
# Diagonal-metric arithmetic (warmup adaptation, tree fallback path).
#
# A tree metric is a pair of trees shaped like the state: ``inv_mass``
# (the diagonal of M^-1) and ``momentum_scale`` (1/sqrt(inv_mass)).
# ``None`` everywhere means the identity metric, and every helper's
# ``None`` branch is bitwise-identical to the unscaled original.
# ----------------------------------------------------------------------


class TreeMetric:
    """Diagonal metric split into per-leaf arrays (tree fallback path).

    Mirrors :class:`repro.runtime.mcmc.adapt.DiagMetric`: ``inv_mass``
    holds the diagonal of ``M^-1`` per leaf, ``momentum_scale`` its
    reciprocal square root (momenta are ``std_normal * momentum_scale``).
    """

    __slots__ = ("inv_mass", "momentum_scale")

    def __init__(self, inv_mass: Tree):
        self.inv_mass = {
            k: np.asarray(v, dtype=np.float64) for k, v in inv_mass.items()
        }
        self.momentum_scale = {
            k: 1.0 / np.sqrt(v) for k, v in self.inv_mass.items()
        }


def tree_mul(a: Tree, b: Tree) -> Tree:
    """Elementwise ``a * b`` (rebinds; inputs untouched)."""
    return {k: a[k] * b[k] for k in a}


def tree_metric_scale_(p: Tree, scale: Tree) -> Tree:
    """In-place-ish ``p[k] *= scale[k]`` (rebinds non-array entries)."""
    for k in p:
        v = p[k]
        if isinstance(v, np.ndarray) and v.ndim > 0:
            np.multiply(v, scale[k], out=v)
        else:
            p[k] = v * scale[k]
    return p


def tree_metric_axpy_(a: Tree, x: Tree, m: Tree, alpha: float) -> Tree:
    """In-place ``a += alpha * (m * x)`` -- the metric drift update."""
    for k in a:
        v = a[k]
        t = alpha * (m[k] * x[k])
        if isinstance(v, np.ndarray):
            np.add(v, t, out=v)
        else:
            a[k] = v + t
    return a


def tree_metric_dot(p: Tree, m: Tree) -> float:
    """``sum_k p[k] . (m[k] * p[k])`` -- twice the kinetic energy."""
    return float(
        sum(
            np.sum(np.asarray(p[k]) * np.asarray(m[k]) * np.asarray(p[k]))
            for k in p
        )
    )


def tree_ravel(t: Tree) -> np.ndarray:
    """Concatenate the tree's leaves (sorted by key) into one vector."""
    return np.concatenate(
        [np.ravel(np.asarray(t[k], dtype=np.float64)) for k in sorted(t)]
    )


def tree_split_flat(flat: np.ndarray, like: Tree) -> Tree:
    """Split a flat vector back into leaves shaped like ``like``.

    Inverse of :func:`tree_ravel` (same sorted-key order).
    """
    out: Tree = {}
    pos = 0
    for k in sorted(like):
        shape = np.shape(like[k])
        n = int(np.prod(shape)) if shape else 1
        out[k] = np.asarray(flat[pos : pos + n], dtype=np.float64).reshape(
            shape
        )
        pos += n
    return out
