"""Dict-of-arrays ("tree") arithmetic for multi-variable updates.

A gradient-based update over a block of variables works on the
product space; representing points as ``{name: ndarray}`` keeps the
driver code independent of how many variables the block holds.
Scalars are carried as 0-d arrays.
"""

from __future__ import annotations

import numpy as np

Tree = dict


def tree_copy(t: Tree) -> Tree:
    return {k: np.array(v, dtype=np.float64, copy=True) for k, v in t.items()}


def tree_copy_into(dst: Tree, src: Tree) -> Tree:
    """Copy ``src`` into the preallocated buffers of ``dst`` (returned)."""
    for k, v in src.items():
        np.copyto(dst[k], v)
    return dst


def tree_empty_like(t: Tree) -> Tree:
    """Uninitialised buffers shaped like ``t`` (0-d arrays for scalars)."""
    return {k: np.empty(np.shape(v), dtype=np.float64) for k, v in t.items()}


def tree_add(a: Tree, b: Tree) -> Tree:
    return {k: a[k] + b[k] for k in a}


def tree_scale(a: Tree, s: float) -> Tree:
    return {k: s * v for k, v in a.items()}


def tree_axpy(a: Tree, x: Tree, alpha: float) -> Tree:
    """``a + alpha * x``."""
    return {k: a[k] + alpha * x[k] for k in a}


def tree_axpy_(a: Tree, x: Tree, alpha: float) -> Tree:
    """In-place ``a += alpha * x`` via ``out=`` ufuncs.

    Entries that are not writable arrays (plain floats handed in by a
    caller) are rebound instead; either way the numerics match
    ``a[k] + alpha * x[k]`` bitwise.
    """
    for k in a:
        v = a[k]
        t = alpha * x[k]
        if isinstance(v, np.ndarray):
            np.add(v, t, out=v)
        else:
            a[k] = v + t
    return a


def tree_dot(a: Tree, b: Tree) -> float:
    return float(sum(np.sum(np.asarray(a[k]) * np.asarray(b[k])) for k in a))


def tree_gaussian(rng, like: Tree) -> Tree:
    return {k: rng.standard_normal(np.shape(v)) for k, v in like.items()}
