"""No-U-Turn sampler (prototype, paper footnote 5).

Implements the efficient NUTS of Hoffman & Gelman (2014, Algorithm 3)
with multinomial-free slice sampling and a fixed maximum tree depth.
Two interchangeable state representations:

- the dict-of-arrays ``Tree`` path over
  :class:`~repro.runtime.mcmc.hmc.TransformedLogDensity` (general case);
- the packed flat-vector path over
  :class:`~repro.runtime.mcmc.hmc.FlatLogDensity`
  (:func:`nuts_step_flat`), which carries the gradient alongside each
  tree endpoint so every leaf costs exactly one fused compiled
  evaluation instead of three (gradient at the start point, gradient at
  the new point, log density at the new point).

Both consume the RNG stream identically (same draw sites, same order).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.hmc import FlatLogDensity, TransformedLogDensity, flat_gaussian
from repro.runtime.mcmc.tree import (
    Tree,
    tree_axpy,
    tree_axpy_,
    tree_copy,
    tree_dot,
    tree_gaussian,
    tree_metric_dot,
    tree_metric_scale_,
    tree_mul,
)

_MAX_DEPTH = 8
_DELTA_MAX = 1000.0


def _leapfrog_one(target, z, p, eps, metric=None):
    half = 0.5 * eps
    grad = target.grad(z)
    p = tree_axpy(p, grad, half)
    if metric is None:
        z = tree_axpy(z, p, eps)
    else:
        z = tree_axpy(z, tree_mul(metric.inv_mass, p), eps)
    grad = target.grad(z)
    # p and z are fresh trees here; finish the half-kick in place.
    p = tree_axpy_(p, grad, half)
    return z, p


def _tree_kin(p: Tree, metric) -> float:
    """Kinetic energy; the ``None`` branch matches the pre-metric code."""
    if metric is None:
        return 0.5 * tree_dot(p, p)
    return 0.5 * tree_metric_dot(p, metric.inv_mass)


def _no_uturn(z_minus, z_plus, p_minus, p_plus, metric=None) -> bool:
    diff = {k: np.asarray(z_plus[k]) - np.asarray(z_minus[k]) for k in z_plus}
    if metric is not None:
        # The no-U-turn criterion compares against *velocities* M^-1 p.
        p_minus = tree_mul(metric.inv_mass, p_minus)
        p_plus = tree_mul(metric.inv_mass, p_plus)
    return (
        tree_dot(diff, p_minus) >= 0 and tree_dot(diff, p_plus) >= 0
    )


def nuts_step(
    rng,
    target: TransformedLogDensity,
    z: Tree,
    step_size: float,
    info: dict | None = None,
    metric=None,
):
    """One NUTS transition.

    Returns ``(next position, n_leapfrog, accept_stat)`` where
    ``accept_stat`` is the average Metropolis acceptance over the tree's
    leaf states -- the statistic dual-averaging step-size adaptation
    targets (Hoffman & Gelman 2014).

    When ``info`` is supplied it is filled with the per-transition
    telemetry record: ``tree_depth``, ``n_leapfrog``, ``accept_stat``,
    the initial Hamiltonian ``energy``, and a ``divergent`` flag (a
    leaf's energy error exceeded ``_DELTA_MAX``).  ``metric`` (a
    :class:`~repro.runtime.mcmc.tree.TreeMetric`, ``None`` = identity)
    scales momenta after the standard-normal draw so the RNG stream is
    unchanged; the ``None`` branches are the exact pre-adaptation path.
    """
    p0 = tree_gaussian(rng, z)
    if metric is not None:
        tree_metric_scale_(p0, metric.momentum_scale)
    joint0 = target.logpdf(z) - _tree_kin(p0, metric)
    log_u = joint0 + np.log(rng.uniform())
    divergent = False

    z_minus = tree_copy(z)
    z_plus = tree_copy(z)
    p_minus = tree_copy(p0)
    p_plus = tree_copy(p0)
    z_sample = tree_copy(z)
    n = 1
    leapfrogs = 0
    keep_going = True
    alpha_sum = 0.0
    n_alpha = 0

    def build(zb, pb, direction, depth):
        nonlocal leapfrogs, alpha_sum, n_alpha, divergent
        if depth == 0:
            z1, p1 = _leapfrog_one(
                target, zb, pb, direction * step_size, metric=metric
            )
            leapfrogs += 1
            joint = target.logpdf(z1) - _tree_kin(p1, metric)
            # NaN energies (overflowed trajectories) count as zero
            # acceptance -- min(0.0, nan) would silently yield 1.0 and
            # feed dual averaging a perfect score for a divergence.
            delta = joint - joint0
            if not np.isnan(delta):
                alpha_sum += float(min(1.0, np.exp(min(0.0, delta))))
            n_alpha += 1
            n1 = 1 if log_u <= joint else 0
            s1 = log_u < joint + _DELTA_MAX
            if not s1:
                divergent = True
            return z1, p1, z1, p1, z1, n1, s1
        zm, pm, zp, pp, zs, n1, s1 = build(zb, pb, direction, depth - 1)
        if s1:
            if direction == -1:
                zm, pm, _, _, zs2, n2, s2 = build(zm, pm, direction, depth - 1)
            else:
                _, _, zp, pp, zs2, n2, s2 = build(zp, pp, direction, depth - 1)
            if n2 > 0 and rng.uniform() < n2 / max(1, n1 + n2):
                zs = zs2
            n1 += n2
            s1 = s2 and _no_uturn(zm, zp, pm, pp, metric)
        return zm, pm, zp, pp, zs, n1, s1

    depth = 0
    while keep_going and depth < _MAX_DEPTH:
        direction = -1 if rng.uniform() < 0.5 else 1
        if direction == -1:
            z_minus, p_minus, _, _, z_prop, n_prime, s_prime = build(
                z_minus, p_minus, direction, depth
            )
        else:
            _, _, z_plus, p_plus, z_prop, n_prime, s_prime = build(
                z_plus, p_plus, direction, depth
            )
        if s_prime and rng.uniform() < min(1.0, n_prime / n):
            z_sample = z_prop
        n += n_prime
        keep_going = s_prime and _no_uturn(
            z_minus, z_plus, p_minus, p_plus, metric
        )
        depth += 1
    accept_stat = alpha_sum / n_alpha if n_alpha else 0.0
    if info is not None:
        info["tree_depth"] = depth
        info["n_leapfrog"] = leapfrogs
        info["accept_stat"] = accept_stat
        info["energy"] = float(-joint0)
        info["divergent"] = divergent
    return z_sample, leapfrogs, accept_stat


# ----------------------------------------------------------------------
# Flat-state path.
# ----------------------------------------------------------------------


def _leapfrog_one_flat(target: FlatLogDensity, z, p, g, eps, scratch,
                       metric=None):
    """One leapfrog step from ``(z, p)`` with the gradient ``g`` at ``z``
    already known; returns fresh ``(z1, p1, g1, lp1)``.

    One fused compiled evaluation (value+gradient at the new point) per
    call -- the gradient at the start point rides in with the endpoint.
    With a metric the drift picks up ``M^-1`` elementwise; the ``None``
    branch is the exact pre-adaptation code path.
    """
    half = 0.5 * eps
    p1 = np.empty_like(p)
    z1 = np.empty_like(z)
    np.multiply(g, half, out=p1)
    np.add(p1, p, out=p1)
    if metric is None:
        np.multiply(p1, eps, out=z1)
    else:
        np.multiply(p1, metric.inv_mass, out=z1)
        np.multiply(z1, eps, out=z1)
    np.add(z1, z, out=z1)
    lp1, g1 = target.value_and_grad(z1)
    g1 = g1.copy()  # detach from the density's internal buffer
    np.multiply(g1, half, out=scratch)
    np.add(p1, scratch, out=p1)
    return z1, p1, g1, lp1


def _flat_kin(p, metric) -> float:
    """Kinetic energy; the ``None`` branch matches the pre-metric code."""
    if metric is None:
        return 0.5 * float(np.dot(p, p))
    return 0.5 * float(np.dot(p, metric.inv_mass * p))


def _no_uturn_flat(z_minus, z_plus, p_minus, p_plus, metric=None) -> bool:
    diff = z_plus - z_minus
    if metric is not None:
        # The no-U-turn criterion compares against *velocities* M^-1 p.
        p_minus = metric.inv_mass * p_minus
        p_plus = metric.inv_mass * p_plus
    return float(np.dot(diff, p_minus)) >= 0 and float(np.dot(diff, p_plus)) >= 0


def nuts_step_flat(
    rng,
    target: FlatLogDensity,
    z: np.ndarray,
    step_size: float,
    info: dict | None = None,
    metric=None,
):
    """One NUTS transition on the packed flat state.

    Mirrors :func:`nuts_step` exactly (same recursion, same RNG draw
    sites) with ``(position, momentum, gradient)`` vector triples as
    tree endpoints, whole-vector leapfrog/no-U-turn arithmetic, and one
    fused compiled evaluation per leaf.  ``z`` is never mutated.
    ``metric`` (a :class:`~repro.runtime.mcmc.adapt.DiagMetric`,
    ``None`` = identity) is one contiguous array applied in the momentum
    scale, drift, kinetic energy, and U-turn test; the momentum is
    scaled after the standard-normal draw (same RNG stream either way)
    and the ``None`` branches are the exact pre-adaptation code path.
    """
    p0 = np.empty_like(z)
    flat_gaussian(rng, target.layout, out=p0)
    if metric is not None:
        np.multiply(p0, metric.momentum_scale, out=p0)
    scratch = np.empty_like(z)
    with np.errstate(invalid="ignore", over="ignore"):
        lp0, g0 = target.value_and_grad(z)
    joint0 = lp0 - _flat_kin(p0, metric)
    log_u = joint0 + np.log(rng.uniform())
    divergent = False

    z_minus = z.copy()
    z_plus = z.copy()
    p_minus = p0.copy()
    p_plus = p0.copy()
    g_minus = g0.copy()
    g_plus = g0.copy()
    z_sample = z.copy()
    n = 1
    leapfrogs = 0
    keep_going = True
    alpha_sum = 0.0
    n_alpha = 0

    def build(zb, pb, gb, direction, depth):
        nonlocal leapfrogs, alpha_sum, n_alpha, divergent
        if depth == 0:
            with np.errstate(invalid="ignore", over="ignore"):
                z1, p1, g1, lp1 = _leapfrog_one_flat(
                    target, zb, pb, gb, direction * step_size, scratch,
                    metric=metric,
                )
                joint = lp1 - _flat_kin(p1, metric)
            leapfrogs += 1
            # NaN energies (overflowed trajectories) count as zero
            # acceptance -- min(0.0, nan) would silently yield 1.0 and
            # feed dual averaging a perfect score for a divergence.
            delta = joint - joint0
            if not np.isnan(delta):
                alpha_sum += float(min(1.0, np.exp(min(0.0, delta))))
            n_alpha += 1
            n1 = 1 if log_u <= joint else 0
            s1 = log_u < joint + _DELTA_MAX
            if not s1:
                divergent = True
            return z1, p1, g1, z1, p1, g1, z1, n1, s1
        zm, pm, gm, zp, pp, gp, zs, n1, s1 = build(zb, pb, gb, direction, depth - 1)
        if s1:
            if direction == -1:
                zm, pm, gm, _, _, _, zs2, n2, s2 = build(
                    zm, pm, gm, direction, depth - 1
                )
            else:
                _, _, _, zp, pp, gp, zs2, n2, s2 = build(
                    zp, pp, gp, direction, depth - 1
                )
            if n2 > 0 and rng.uniform() < n2 / max(1, n1 + n2):
                zs = zs2
            n1 += n2
            s1 = s2 and _no_uturn_flat(zm, zp, pm, pp, metric)
        return zm, pm, gm, zp, pp, gp, zs, n1, s1

    depth = 0
    while keep_going and depth < _MAX_DEPTH:
        direction = -1 if rng.uniform() < 0.5 else 1
        if direction == -1:
            z_minus, p_minus, g_minus, _, _, _, z_prop, n_prime, s_prime = build(
                z_minus, p_minus, g_minus, direction, depth
            )
        else:
            _, _, _, z_plus, p_plus, g_plus, z_prop, n_prime, s_prime = build(
                z_plus, p_plus, g_plus, direction, depth
            )
        if s_prime and rng.uniform() < min(1.0, n_prime / n):
            z_sample = z_prop
        n += n_prime
        keep_going = s_prime and _no_uturn_flat(
            z_minus, z_plus, p_minus, p_plus, metric
        )
        depth += 1
    accept_stat = alpha_sum / n_alpha if n_alpha else 0.0
    if info is not None:
        info["tree_depth"] = depth
        info["n_leapfrog"] = leapfrogs
        info["accept_stat"] = accept_stat
        info["energy"] = float(-joint0)
        info["divergent"] = divergent
    return z_sample, leapfrogs, accept_stat
