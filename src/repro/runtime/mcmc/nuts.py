"""No-U-Turn sampler (prototype, paper footnote 5).

Implements the efficient NUTS of Hoffman & Gelman (2014, Algorithm 3)
with multinomial-free slice sampling and a fixed maximum tree depth,
over the same :class:`TransformedLogDensity` interface as HMC.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.mcmc.hmc import TransformedLogDensity
from repro.runtime.mcmc.tree import Tree, tree_copy, tree_dot, tree_gaussian

_MAX_DEPTH = 8
_DELTA_MAX = 1000.0


def _leapfrog_one(target, z, p, eps):
    grad = target.grad(z)
    p = {k: p[k] + 0.5 * eps * grad[k] for k in p}
    z = {k: z[k] + eps * p[k] for k in z}
    grad = target.grad(z)
    p = {k: p[k] + 0.5 * eps * grad[k] for k in p}
    return z, p


def _no_uturn(z_minus, z_plus, p_minus, p_plus) -> bool:
    diff = {k: np.asarray(z_plus[k]) - np.asarray(z_minus[k]) for k in z_plus}
    return (
        tree_dot(diff, p_minus) >= 0 and tree_dot(diff, p_plus) >= 0
    )


def nuts_step(
    rng,
    target: TransformedLogDensity,
    z: Tree,
    step_size: float,
    info: dict | None = None,
):
    """One NUTS transition.

    Returns ``(next position, n_leapfrog, accept_stat)`` where
    ``accept_stat`` is the average Metropolis acceptance over the tree's
    leaf states -- the statistic dual-averaging step-size adaptation
    targets (Hoffman & Gelman 2014).

    When ``info`` is supplied it is filled with the per-transition
    telemetry record: ``tree_depth``, ``n_leapfrog``, ``accept_stat``,
    the initial Hamiltonian ``energy``, and a ``divergent`` flag (a
    leaf's energy error exceeded ``_DELTA_MAX``).
    """
    p0 = tree_gaussian(rng, z)
    joint0 = target.logpdf(z) - 0.5 * tree_dot(p0, p0)
    log_u = joint0 + np.log(rng.uniform())
    divergent = False

    z_minus = tree_copy(z)
    z_plus = tree_copy(z)
    p_minus = tree_copy(p0)
    p_plus = tree_copy(p0)
    z_sample = tree_copy(z)
    n = 1
    leapfrogs = 0
    keep_going = True
    alpha_sum = 0.0
    n_alpha = 0

    def build(zb, pb, direction, depth):
        nonlocal leapfrogs, alpha_sum, n_alpha, divergent
        if depth == 0:
            z1, p1 = _leapfrog_one(target, zb, pb, direction * step_size)
            leapfrogs += 1
            joint = target.logpdf(z1) - 0.5 * tree_dot(p1, p1)
            alpha_sum += float(min(1.0, np.exp(min(0.0, joint - joint0))))
            n_alpha += 1
            n1 = 1 if log_u <= joint else 0
            s1 = log_u < joint + _DELTA_MAX
            if not s1:
                divergent = True
            return z1, p1, z1, p1, z1, n1, s1
        zm, pm, zp, pp, zs, n1, s1 = build(zb, pb, direction, depth - 1)
        if s1:
            if direction == -1:
                zm, pm, _, _, zs2, n2, s2 = build(zm, pm, direction, depth - 1)
            else:
                _, _, zp, pp, zs2, n2, s2 = build(zp, pp, direction, depth - 1)
            if n2 > 0 and rng.uniform() < n2 / max(1, n1 + n2):
                zs = zs2
            n1 += n2
            s1 = s2 and _no_uturn(zm, zp, pm, pp)
        return zm, pm, zp, pp, zs, n1, s1

    depth = 0
    while keep_going and depth < _MAX_DEPTH:
        direction = -1 if rng.uniform() < 0.5 else 1
        if direction == -1:
            z_minus, p_minus, _, _, z_prop, n_prime, s_prime = build(
                z_minus, p_minus, direction, depth
            )
        else:
            _, _, z_plus, p_plus, z_prop, n_prime, s_prime = build(
                z_plus, p_plus, direction, depth
            )
        if s_prime and rng.uniform() < min(1.0, n_prime / n):
            z_sample = z_prop
        n += n_prime
        keep_going = s_prime and _no_uturn(z_minus, z_plus, p_minus, p_plus)
        depth += 1
    accept_stat = alpha_sum / n_alpha if n_alpha else 0.0
    if info is not None:
        info["tree_depth"] = depth
        info["n_leapfrog"] = leapfrogs
        info["accept_stat"] = accept_stat
        info["energy"] = float(-joint0)
        info["divergent"] = divergent
    return z_sample, leapfrogs, accept_stat
