"""Metropolis-Hastings acceptance (paper Section 5.5).

Every base MCMC update is a MH update with a particular proposal; the
acceptance ratio ``alpha = min(1, p(x') q(x' -> x) / (p(x) q(x -> x')))``
is computed in log space.  Gibbs updates have ``alpha = 1`` and skip
this entirely.
"""

from __future__ import annotations

import numpy as np


def mh_accept(rng, log_alpha: float) -> bool:
    """Accept with probability ``min(1, exp(log_alpha))``.

    NaN log-ratios (e.g. from an out-of-support proposal evaluating to
    ``-inf - -inf``) are rejected, keeping the chain on valid states.
    Callers that need to *observe* NaN rejections (they are otherwise
    indistinguishable from ordinary rejections) check ``log_alpha``
    themselves and record the count in their telemetry ``info`` record;
    the update drivers warn when the NaN-reject rate exceeds 1%.
    """
    if np.isnan(log_alpha):
        return False
    if log_alpha >= 0:
        return True
    return bool(np.log(rng.uniform()) < log_alpha)


def mh_accept_mask(u: np.ndarray, log_alpha: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mh_accept`: one decision per element lane.

    ``u`` holds one pre-drawn uniform per lane (drawn unconditionally;
    unlike the scalar path there is no saving in skipping the draw for
    sure-accept lanes).  NaN log-ratios fail both comparisons, so they
    are rejected exactly as in the scalar routine.
    """
    la = np.asarray(log_alpha, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return (la >= 0.0) | (np.log(np.asarray(u)) < la)
