"""Slice sampling drivers.

Two variants, matching the paper's base updates:

- :func:`slice_coordinate` -- stepping-out slice sampling (Neal 2003)
  applied per coordinate.  The paper's "reflective" variant uses
  gradients to reflect trajectories; the stepping-out variant targets
  the same conditionals using only likelihood evaluations and is the
  standard library realisation (see DESIGN.md for the deviation note).

- :func:`elliptical_slice` -- elliptical slice sampling (Murray, Adams,
  MacKay 2010) for variables with Gaussian priors: rotate on the
  ellipse through the current state and a prior draw, shrinking the
  bracket until the likelihood accepts.
"""

from __future__ import annotations

import numpy as np


def slice_coordinate(
    rng,
    logp,  # callable: scalar value -> float
    x0: float,
    width: float = 1.0,
    max_steps: int = 32,
    info: dict | None = None,
) -> float:
    """One stepping-out slice update of a scalar coordinate.

    When ``info`` is supplied it is filled with the per-update telemetry
    record: the number of bracket ``expansions`` (step-out widenings)
    and ``shrinks`` (rejected candidates that narrowed the bracket).
    """
    lp0 = logp(x0)
    if lp0 == -np.inf:
        raise ValueError("slice sampler started from a zero-density point")
    log_y = lp0 + np.log(rng.uniform())

    # Step out.
    expansions = 0
    u = rng.uniform()
    lo = x0 - width * u
    hi = lo + width
    steps = max_steps
    while steps > 0 and logp(lo) > log_y:
        lo -= width
        steps -= 1
        expansions += 1
    steps = max_steps
    while steps > 0 and logp(hi) > log_y:
        hi += width
        steps -= 1
        expansions += 1

    # Shrink.
    shrinks = 0

    def _done(x):
        if info is not None:
            info["expansions"] = expansions
            info["shrinks"] = shrinks
        return x

    while True:
        x1 = rng.uniform(lo, hi)
        if logp(x1) > log_y:
            return _done(x1)
        shrinks += 1
        if x1 < x0:
            lo = x1
        else:
            hi = x1
        if hi - lo < 1e-12:
            return _done(x0)


def slice_sweep(
    rng,
    logp_all,  # callable: lane-value vector -> per-lane log density vector
    x0: np.ndarray,
    width: float = 1.0,
    max_steps: int = 32,
    info: dict | None = None,
) -> np.ndarray:
    """One stepping-out slice update of every (scalar) element lane.

    The batched counterpart of :func:`slice_coordinate`: every lane
    steps its bracket out and shrinks it simultaneously; an active-lane
    mask retires lanes as their candidates are accepted, so the loop
    iteration count is the *maximum* over lanes rather than the sum.
    ``info`` receives lane-aggregated ``expansions``/``shrinks`` totals.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    n = x0.shape[0]
    lp0 = logp_all(x0)
    if np.any(lp0 == -np.inf):
        raise ValueError("slice sampler started from a zero-density point")
    log_y = lp0 + np.log(rng.uniform(size=n))

    # Step out.  Each lane keeps widening its own edge while the edge
    # density stays above the slice; retired lanes are masked off, so
    # evaluating the whole edge vector each round scores only live work.
    expansions = 0
    lo = x0 - width * rng.uniform(size=n)
    hi = lo + width

    def _step_out(edge, delta):
        nonlocal expansions
        steps = max_steps
        active = logp_all(edge) > log_y
        while steps > 0 and np.any(active):
            edge = np.where(active, edge + delta, edge)
            expansions += int(np.count_nonzero(active))
            steps -= 1
            active &= logp_all(edge) > log_y
        return edge

    lo = _step_out(lo, -width)
    hi = _step_out(hi, width)

    # Shrink until every lane has accepted (or its bracket collapsed).
    shrinks = 0
    x1 = x0.copy()
    active = np.ones(n, dtype=bool)
    while np.any(active):
        cand = rng.uniform(lo, hi)
        lp = logp_all(np.where(active, cand, x1))
        ok = active & (lp > log_y)
        x1 = np.where(ok, cand, x1)
        rejected = active & ~ok
        shrinks += int(np.count_nonzero(rejected))
        lo = np.where(rejected & (cand < x0), cand, lo)
        hi = np.where(rejected & (cand >= x0), cand, hi)
        # Collapsed brackets bail out to the current value, like the
        # scalar routine (x1 still holds x0 for never-accepted lanes).
        active = rejected & ~((hi - lo) < 1e-12)
    if info is not None:
        info["expansions"] = expansions
        info["shrinks"] = shrinks
    return x1


def elliptical_slice(
    rng,
    loglik,  # callable: value (ndarray or float) -> float, prior excluded
    x0: np.ndarray,
    prior_mean: np.ndarray,
    prior_draw: np.ndarray,
    info: dict | None = None,
) -> np.ndarray:
    """One elliptical slice update given a draw ``nu`` from the prior.

    When ``info`` is supplied, ``shrinks`` records how many candidate
    angles were rejected before the likelihood accepted.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    m = np.asarray(prior_mean, dtype=np.float64)
    nu = np.asarray(prior_draw, dtype=np.float64)

    log_y = loglik(x0) + np.log(rng.uniform())
    theta = rng.uniform(0.0, 2.0 * np.pi)
    lo, hi = theta - 2.0 * np.pi, theta
    shrinks = 0

    def _done(x):
        if info is not None:
            info["shrinks"] = shrinks
        return x

    while True:
        x1 = m + (x0 - m) * np.cos(theta) + (nu - m) * np.sin(theta)
        if loglik(x1) > log_y:
            return _done(x1)
        shrinks += 1
        if theta < 0:
            lo = theta
        else:
            hi = theta
        theta = rng.uniform(lo, hi)
        if hi - lo < 1e-12:
            return _done(x0)


def elliptical_slice_sweep(
    rng,
    loglik_all,  # callable: lane-value array -> per-lane log likelihood vector
    x0: np.ndarray,
    prior_mean: np.ndarray,
    prior_draws: np.ndarray,
    info: dict | None = None,
) -> np.ndarray:
    """One elliptical slice update of every element lane at once.

    Lanes are the leading axis of ``x0``; trailing axes are the
    element's own (event) dimensions, so a batch of vector-valued
    elements rotates whole vectors.  Each lane walks its own shrinking
    angle bracket until its likelihood accepts; accepted lanes freeze
    while the rest keep shrinking.  ``info`` receives the
    lane-aggregated ``shrinks`` total.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    n = x0.shape[0]
    m = np.asarray(prior_mean, dtype=np.float64)
    nu = np.asarray(prior_draws, dtype=np.float64)

    def _col(v):
        # Broadcast a per-lane vector over the element's event axes.
        return v.reshape(v.shape + (1,) * (x0.ndim - 1))

    log_y = loglik_all(x0) + np.log(rng.uniform(size=n))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    lo, hi = theta - 2.0 * np.pi, theta
    shrinks = 0
    x1 = x0.copy()
    active = np.ones(n, dtype=bool)
    while np.any(active):
        cand = m + (x0 - m) * _col(np.cos(theta)) + (nu - m) * _col(np.sin(theta))
        lp = loglik_all(np.where(_col(active), cand, x1))
        ok = active & (lp > log_y)
        x1 = np.where(_col(ok), cand, x1)
        rejected = active & ~ok
        shrinks += int(np.count_nonzero(rejected))
        lo = np.where(rejected & (theta < 0), theta, lo)
        hi = np.where(rejected & (theta >= 0), theta, hi)
        theta = np.where(rejected, rng.uniform(lo, hi), theta)
        # A collapsed angle bracket keeps the current state, like the
        # scalar routine (x1 still holds x0 for never-accepted lanes).
        active = rejected & ~((hi - lo) < 1e-12)
    if info is not None:
        info["shrinks"] = shrinks
    return x1
