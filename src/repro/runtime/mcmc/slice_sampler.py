"""Slice sampling drivers.

Two variants, matching the paper's base updates:

- :func:`slice_coordinate` -- stepping-out slice sampling (Neal 2003)
  applied per coordinate.  The paper's "reflective" variant uses
  gradients to reflect trajectories; the stepping-out variant targets
  the same conditionals using only likelihood evaluations and is the
  standard library realisation (see DESIGN.md for the deviation note).

- :func:`elliptical_slice` -- elliptical slice sampling (Murray, Adams,
  MacKay 2010) for variables with Gaussian priors: rotate on the
  ellipse through the current state and a prior draw, shrinking the
  bracket until the likelihood accepts.
"""

from __future__ import annotations

import numpy as np


def slice_coordinate(
    rng,
    logp,  # callable: scalar value -> float
    x0: float,
    width: float = 1.0,
    max_steps: int = 32,
    info: dict | None = None,
) -> float:
    """One stepping-out slice update of a scalar coordinate.

    When ``info`` is supplied it is filled with the per-update telemetry
    record: the number of bracket ``expansions`` (step-out widenings)
    and ``shrinks`` (rejected candidates that narrowed the bracket).
    """
    lp0 = logp(x0)
    if lp0 == -np.inf:
        raise ValueError("slice sampler started from a zero-density point")
    log_y = lp0 + np.log(rng.uniform())

    # Step out.
    expansions = 0
    u = rng.uniform()
    lo = x0 - width * u
    hi = lo + width
    steps = max_steps
    while steps > 0 and logp(lo) > log_y:
        lo -= width
        steps -= 1
        expansions += 1
    steps = max_steps
    while steps > 0 and logp(hi) > log_y:
        hi += width
        steps -= 1
        expansions += 1

    # Shrink.
    shrinks = 0

    def _done(x):
        if info is not None:
            info["expansions"] = expansions
            info["shrinks"] = shrinks
        return x

    while True:
        x1 = rng.uniform(lo, hi)
        if logp(x1) > log_y:
            return _done(x1)
        shrinks += 1
        if x1 < x0:
            lo = x1
        else:
            hi = x1
        if hi - lo < 1e-12:
            return _done(x0)


def elliptical_slice(
    rng,
    loglik,  # callable: value (ndarray or float) -> float, prior excluded
    x0: np.ndarray,
    prior_mean: np.ndarray,
    prior_draw: np.ndarray,
    info: dict | None = None,
) -> np.ndarray:
    """One elliptical slice update given a draw ``nu`` from the prior.

    When ``info`` is supplied, ``shrinks`` records how many candidate
    angles were rejected before the likelihood accepted.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    m = np.asarray(prior_mean, dtype=np.float64)
    nu = np.asarray(prior_draw, dtype=np.float64)

    log_y = loglik(x0) + np.log(rng.uniform())
    theta = rng.uniform(0.0, 2.0 * np.pi)
    lo, hi = theta - 2.0 * np.pi, theta
    shrinks = 0

    def _done(x):
        if info is not None:
            info["shrinks"] = shrinks
        return x

    while True:
        x1 = m + (x0 - m) * np.cos(theta) + (nu - m) * np.sin(theta)
        if loglik(x1) > log_y:
            return _done(x1)
        shrinks += 1
        if theta < 0:
            lo = theta
        else:
            hi = theta
        theta = rng.uniform(lo, hi)
        if hi - lo < 1e-12:
            return _done(x0)
