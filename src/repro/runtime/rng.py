"""Random-number substrate for compiled samplers and baselines.

All stochastic code in the package draws from an :class:`Rng`, a thin
wrapper over :class:`numpy.random.Generator` that adds a few sampling
primitives the generated code needs (log-space categorical draws, batch
categorical draws) and supports deterministic forking so that parallel
chains and the GPU simulator get independent, reproducible streams.
"""

from __future__ import annotations

import numpy as np


class Rng:
    """A seedable random source with the primitives generated code uses."""

    def __init__(self, seed: int | np.random.Generator | None = None):
        if isinstance(seed, np.random.Generator):
            self._gen = seed
        else:
            self._gen = np.random.default_rng(seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying NumPy generator, for direct distribution calls."""
        return self._gen

    def fork(self, n: int) -> list["Rng"]:
        """Split off ``n`` independent child streams (for parallel chains).

        Forking is deterministic in the parent stream's state, so the
        child streams do not depend on where (or in which process) they
        are later consumed -- the property the parallel chain engine
        relies on for bitwise-reproducible multi-chain runs.
        """
        return [Rng(np.random.default_rng(s)) for s in self._gen.spawn(n)]

    # ------------------------------------------------------------------
    # Serialization: ship forked streams to worker processes.
    # ------------------------------------------------------------------

    def state_spec(self) -> dict:
        """A picklable description of the exact stream position.

        The spec names the bit-generator class and carries its state
        dict, so :meth:`from_spec` rebuilds a stream that continues
        bit-for-bit from the same point in another process.
        """
        bg = self._gen.bit_generator
        return {"bit_generator": type(bg).__name__, "state": bg.state}

    @classmethod
    def from_spec(cls, spec: dict) -> "Rng":
        """Rebuild a stream from :meth:`state_spec` output."""
        bg_cls = getattr(np.random, spec["bit_generator"])
        bg = bg_cls()
        bg.state = spec["state"]
        return cls(np.random.Generator(bg))

    def __getstate__(self) -> dict:
        return self.state_spec()

    def __setstate__(self, spec: dict) -> None:
        bg_cls = getattr(np.random, spec["bit_generator"])
        bg = bg_cls()
        bg.state = spec["state"]
        self._gen = np.random.Generator(bg)

    # ------------------------------------------------------------------
    # Scalar / batch primitives used by generated sampler code.
    # ------------------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size=size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._gen.normal(loc, scale, size=size)

    def standard_normal(self, size=None):
        return self._gen.standard_normal(size=size)

    def gamma(self, shape, scale=1.0, size=None):
        return self._gen.gamma(shape, scale, size=size)

    def beta(self, a, b, size=None):
        return self._gen.beta(a, b, size=size)

    def exponential(self, scale=1.0, size=None):
        return self._gen.exponential(scale, size=size)

    def poisson(self, lam, size=None):
        return self._gen.poisson(lam, size=size)

    def integers(self, low, high=None, size=None):
        return self._gen.integers(low, high, size=size)

    def categorical_logits(self, logits: np.ndarray) -> np.ndarray:
        """Draw categorical variates from unnormalised log-probabilities.

        ``logits`` has shape ``(..., K)``; one draw is made per leading
        index using the Gumbel-max trick, which is numerically safe for
        very negative logits and vectorises across the batch.
        """
        logits = np.asarray(logits, dtype=np.float64)
        gumbel = -np.log(-np.log(self._gen.uniform(size=logits.shape)))
        return np.argmax(logits + gumbel, axis=-1)

    def categorical(self, probs: np.ndarray) -> np.ndarray:
        """Draw categorical variates from (rows of) a probability vector."""
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim == 1:
            return int(self._gen.choice(probs.shape[0], p=probs / probs.sum()))
        cdf = np.cumsum(probs, axis=-1)
        cdf /= cdf[..., -1:]
        u = self._gen.uniform(size=probs.shape[:-1] + (1,))
        return (u > cdf).sum(axis=-1)

    def dirichlet(self, alpha: np.ndarray, size=None) -> np.ndarray:
        alpha = np.asarray(alpha, dtype=np.float64)
        if size is None and alpha.ndim == 1:
            return self._gen.dirichlet(alpha)
        # Batched Dirichlet via normalised Gammas (the runtime-library
        # inlining example from paper Section 5.4).
        shape = (size,) + alpha.shape if size is not None else alpha.shape
        g = self._gen.gamma(np.broadcast_to(alpha, shape))
        return g / g.sum(axis=-1, keepdims=True)
