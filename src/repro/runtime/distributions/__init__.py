"""Primitive distributions with known functional form (paper Section 2.2).

Each distribution provides the Low++ distribution operations: ``ll``
(:meth:`logpdf`), ``samp`` (:meth:`sample`), and ``grad_i``
(:meth:`grad`).  Distributions are registered by surface name in
:mod:`repro.runtime.distributions.registry`.
"""

from repro.runtime.distributions.base import Distribution, GradUnsupported, ParamSpec
from repro.runtime.distributions.registry import (
    all_distributions,
    is_distribution,
    lookup,
    register,
)

__all__ = [
    "Distribution",
    "GradUnsupported",
    "ParamSpec",
    "all_distributions",
    "is_distribution",
    "lookup",
    "register",
]
