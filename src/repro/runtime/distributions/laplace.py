"""Laplace (double-exponential) distribution ``Laplace(loc, scale)``.

Useful as a sparsity-inducing prior in regression models; continuous
with a (sub-gradient at the mode) density gradient, so HMC and slice
updates apply.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Laplace(Distribution):
    name = "Laplace"
    params = (ParamSpec("loc", REAL), ParamSpec("scale", REAL))
    result_ty = REAL
    support = "real"

    def logpdf(self, value, loc, scale):
        x, m, b = map(as_float_array, (value, loc, scale))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = -np.log(2.0 * b) - np.abs(x - m) / b
        return np.where(b > 0, out, -np.inf)

    def sample(self, rng, loc, scale, size=None):
        m, b = as_float_array(loc), as_float_array(scale)
        shape = np.broadcast_shapes(m.shape, b.shape)
        if size is not None:
            shape = (size,) + shape
        u = rng.uniform(-0.5, 0.5, size=shape if shape else None)
        return m - b * np.sign(u) * np.log1p(-2.0 * np.abs(u))

    def grad_value(self, value, loc, scale):
        x, m, b = map(as_float_array, (value, loc, scale))
        return -np.sign(x - m) / b

    def grad_param(self, index, value, loc, scale):
        x, m, b = map(as_float_array, (value, loc, scale))
        if index == 1:
            return np.sign(x - m) / b
        if index == 2:
            return -1.0 / b + np.abs(x - m) / b**2
        raise IndexError(f"Laplace has 2 parameters, not {index}")
