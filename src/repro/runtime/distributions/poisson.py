"""Poisson distribution over the non-negative integers."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.core.types import INT, REAL
from repro.runtime.distributions.base import (
    Distribution,
    ParamSpec,
    as_float_array,
    as_int_array,
)


class Poisson(Distribution):
    name = "Poisson"
    params = (ParamSpec("rate", REAL),)
    result_ty = INT
    is_discrete = True
    support = "nonneg_int"

    def logpdf(self, value, rate):
        x = as_int_array(value)
        lam = as_float_array(rate)
        out = x * np.log(lam) - lam - gammaln(x + 1.0)
        return np.where(x >= 0, out, -np.inf)

    def sample(self, rng, rate, size=None):
        return rng.poisson(as_float_array(rate), size=size)

    def grad_param(self, index, value, rate):
        if index != 1:
            raise IndexError(f"Poisson has 1 parameter, not {index}")
        x = as_float_array(value)
        lam = as_float_array(rate)
        return x / lam - 1.0
