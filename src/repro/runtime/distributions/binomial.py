"""Binomial distribution ``Binomial(trials, p)``."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.core.types import INT, REAL
from repro.runtime.distributions.base import (
    Distribution,
    ParamSpec,
    as_float_array,
    as_int_array,
)


class Binomial(Distribution):
    name = "Binomial"
    params = (ParamSpec("trials", INT), ParamSpec("p", REAL))
    result_ty = INT
    is_discrete = True
    support = "nonneg_int"

    def logpdf(self, value, trials, p):
        k = as_int_array(value)
        n = as_int_array(trials)
        prob = as_float_array(p)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (
                gammaln(n + 1.0)
                - gammaln(k + 1.0)
                - gammaln(n - k + 1.0)
                + k * np.log(prob)
                + (n - k) * np.log1p(-prob)
            )
        return np.where((k >= 0) & (k <= n), out, -np.inf)

    def sample(self, rng, trials, p, size=None):
        n = as_int_array(trials)
        prob = as_float_array(p)
        return rng.generator.binomial(n, prob, size=size)

    def grad_param(self, index, value, trials, p):
        if index == 1:
            raise IndexError("Binomial trials are integer; no gradient")
        if index != 2:
            raise IndexError(f"Binomial has 2 parameters, not {index}")
        k = as_float_array(value)
        n = as_float_array(trials)
        prob = as_float_array(p)
        return k / prob - (n - k) / (1.0 - prob)
