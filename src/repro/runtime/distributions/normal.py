"""Univariate normal distribution, parameterised by mean and *variance*.

The paper's models write ``Normal(0, sigma^2)`` (e.g. the HLR prior), so
the second argument is the variance, not the standard deviation.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array

_LOG_2PI = float(np.log(2.0 * np.pi))


class Normal(Distribution):
    name = "Normal"
    params = (ParamSpec("mean", REAL), ParamSpec("var", REAL))
    result_ty = REAL
    support = "real"

    def logpdf(self, value, mean, var):
        x, mu, v = map(as_float_array, (value, mean, var))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = -0.5 * (_LOG_2PI + np.log(v) + (x - mu) ** 2 / v)
        return np.where(v > 0, out, -np.inf)

    def sample(self, rng, mean, var, size=None):
        mu, v = as_float_array(mean), as_float_array(var)
        return rng.normal(mu, np.sqrt(v), size=size)

    def grad_value(self, value, mean, var):
        x, mu, v = map(as_float_array, (value, mean, var))
        return -(x - mu) / v

    def grad_param(self, index, value, mean, var):
        x, mu, v = map(as_float_array, (value, mean, var))
        if index == 1:  # d/d mean
            return (x - mu) / v
        if index == 2:  # d/d var
            return -0.5 / v + (x - mu) ** 2 / (2.0 * v**2)
        raise IndexError(f"Normal has 2 parameters, not {index}")
