"""Distribution interface used across the compiler and runtime.

Every primitive distribution the modeling language exposes is an
instance of :class:`Distribution`.  The interface mirrors the
distribution operations ``dop`` of the Low++ IL (paper Figure 6):

- ``logpdf``  -- the ``ll`` operation (log density / log mass),
- ``sample``  -- the ``samp`` operation,
- ``grad``    -- the ``grad_i`` operation, where index ``0`` denotes the
  gradient with respect to the *value* and index ``i >= 1`` the gradient
  with respect to the ``i``-th distribution argument.

All operations are vectorised: ``value`` may carry leading batch axes
and parameters broadcast against it, which is what lets the CPU backend
emit whole ``Par`` loops as single vector calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Ty
from repro.errors import ReproError


class GradUnsupported(ReproError):
    """The requested gradient is not implemented for this distribution.

    The compiler consults :meth:`Distribution.supports_grad` before
    scheduling a gradient-based update, so hitting this at runtime
    indicates a compiler bug rather than a user error.
    """


@dataclass(frozen=True)
class ParamSpec:
    """Static description of one distribution parameter."""

    name: str
    ty: Ty


class Distribution:
    """A primitive distribution with known functional form (Section 2.2).

    Sub-classes set the class attributes and implement the numeric
    methods.  ``name`` is the surface-syntax spelling (``Normal``,
    ``MvNormal``, ...).
    """

    name: str
    params: tuple[ParamSpec, ...]
    result_ty: Ty
    is_discrete: bool = False
    #: Support descriptor: one of "real", "pos_real", "unit_interval",
    #: "simplex", "real_vec", "pos_def_mat", "nonneg_int", "binary",
    #: "int_range", "bounded_real".
    support: str = "real"

    # ------------------------------------------------------------------
    def event_shape(self, *params) -> tuple[int, ...]:
        """Shape of one variate given concrete parameter values.

        Used by size inference (Section 5.2) to bound state and
        workspace allocations up front.  Scalar distributions return
        ``()``; vector/matrix distributions inspect their parameters.
        """
        return ()

    def logpdf(self, value, *params):
        """Log density (or log mass) of ``value``; vectorised."""
        raise NotImplementedError

    def sample(self, rng, *params, size=None):
        """Draw a variate (or a batch when ``size``/batched params given)."""
        raise NotImplementedError

    def grad(self, index: int, value, *params):
        """Gradient of ``logpdf`` w.r.t. value (``index=0``) or a parameter.

        Parameter indices are 1-based to match the paper's ``grad_i``
        notation, where position ``i`` refers to the i-th argument of the
        distribution call.
        """
        if index == 0:
            return self.grad_value(value, *params)
        return self.grad_param(index, value, *params)

    def grad_value(self, value, *params):
        raise GradUnsupported(f"{self.name}: gradient w.r.t. value not available")

    def grad_param(self, index: int, value, *params):
        raise GradUnsupported(f"{self.name}: gradient w.r.t. argument {index} not available")

    # ------------------------------------------------------------------
    def supports_grad(self, index: int) -> bool:
        """Whether ``grad(index, ...)`` is implemented (compile-time query)."""
        if self.is_discrete and index == 0:
            return False
        probe = f"grad_{'value' if index == 0 else 'param'}"
        return getattr(type(self), probe) is not getattr(Distribution, probe)

    @property
    def arity(self) -> int:
        return len(self.params)

    def __repr__(self) -> str:
        return f"<dist {self.name}/{self.arity}>"


def as_float_array(x) -> np.ndarray:
    """Coerce a parameter or value to a float64 ndarray (0-d for scalars)."""
    return np.asarray(x, dtype=np.float64)


def as_int_array(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int64)
