"""Beta distribution on the open unit interval."""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Beta(Distribution):
    name = "Beta"
    params = (ParamSpec("a", REAL), ParamSpec("b", REAL))
    result_ty = REAL
    support = "unit_interval"

    def logpdf(self, value, a, b):
        x, aa, bb = map(as_float_array, (value, a, b))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (
                (aa - 1.0) * np.log(x)
                + (bb - 1.0) * np.log1p(-x)
                + gammaln(aa + bb)
                - gammaln(aa)
                - gammaln(bb)
            )
        return np.where((x > 0) & (x < 1), out, -np.inf)

    def sample(self, rng, a, b, size=None):
        return rng.beta(as_float_array(a), as_float_array(b), size=size)

    def grad_value(self, value, a, b):
        x, aa, bb = map(as_float_array, (value, a, b))
        return (aa - 1.0) / x - (bb - 1.0) / (1.0 - x)

    def grad_param(self, index, value, a, b):
        x, aa, bb = map(as_float_array, (value, a, b))
        if index == 1:
            return np.log(x) + digamma(aa + bb) - digamma(aa)
        if index == 2:
            return np.log1p(-x) + digamma(aa + bb) - digamma(bb)
        raise IndexError(f"Beta has 2 parameters, not {index}")
