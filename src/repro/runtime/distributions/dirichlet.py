"""Dirichlet distribution over the probability simplex."""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.types import VEC_REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Dirichlet(Distribution):
    name = "Dirichlet"
    params = (ParamSpec("alpha", VEC_REAL),)
    result_ty = VEC_REAL
    support = "simplex"

    def event_shape(self, alpha):
        return (np.asarray(alpha).shape[-1],)

    def logpdf(self, value, alpha):
        x, a = as_float_array(value), as_float_array(alpha)
        with np.errstate(divide="ignore", invalid="ignore"):
            term = np.sum((a - 1.0) * np.log(x), axis=-1)
        norm = gammaln(np.sum(a, axis=-1)) - np.sum(gammaln(a), axis=-1)
        ok = np.all(x > 0, axis=-1) & np.isclose(np.sum(x, axis=-1), 1.0, atol=1e-6)
        return np.where(ok, term + norm, -np.inf)

    def sample(self, rng, alpha, size=None):
        return rng.dirichlet(as_float_array(alpha), size=size)

    def grad_value(self, value, alpha):
        x, a = as_float_array(value), as_float_array(alpha)
        return (a - 1.0) / x

    def grad_param(self, index, value, alpha):
        if index != 1:
            raise IndexError(f"Dirichlet has 1 parameter, not {index}")
        x, a = as_float_array(value), as_float_array(alpha)
        return np.log(x) - digamma(a) + digamma(np.sum(a, axis=-1, keepdims=True))
