"""Gamma distribution with shape/rate parameterisation."""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Gamma(Distribution):
    name = "Gamma"
    params = (ParamSpec("shape", REAL), ParamSpec("rate", REAL))
    result_ty = REAL
    support = "pos_real"

    def logpdf(self, value, shape, rate):
        x, a, b = map(as_float_array, (value, shape, rate))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = a * np.log(b) - gammaln(a) + (a - 1.0) * np.log(x) - b * x
        return np.where(x > 0, out, -np.inf)

    def sample(self, rng, shape, rate, size=None):
        a, b = as_float_array(shape), as_float_array(rate)
        return rng.gamma(a, 1.0 / b, size=size)

    def grad_value(self, value, shape, rate):
        x, a, b = map(as_float_array, (value, shape, rate))
        return (a - 1.0) / x - b

    def grad_param(self, index, value, shape, rate):
        x, a, b = map(as_float_array, (value, shape, rate))
        if index == 1:  # d/d shape
            return np.log(b) - digamma(a) + np.log(x)
        if index == 2:  # d/d rate
            return a / b - x
        raise IndexError(f"Gamma has 2 parameters, not {index}")
