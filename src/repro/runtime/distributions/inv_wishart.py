"""Inverse-Wishart distribution over positive-definite matrices.

Used as the conjugate prior for an ``MvNormal`` covariance in the HGMM
(paper Section 7.2).  Sampling uses the Bartlett decomposition of the
Wishart distribution applied to the inverse scale matrix.
"""

from __future__ import annotations

import numpy as np
from scipy.special import multigammaln

from repro.core.types import MAT_REAL, REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


def _logdet(m: np.ndarray) -> np.ndarray:
    sign, val = np.linalg.slogdet(m)
    return np.where(sign > 0, val, -np.inf)


class InvWishart(Distribution):
    name = "InvWishart"
    params = (ParamSpec("df", REAL), ParamSpec("scale", MAT_REAL))
    result_ty = MAT_REAL
    support = "pos_def_mat"

    def event_shape(self, df, scale):
        d = np.asarray(scale).shape[-1]
        return (d, d)

    def logpdf(self, value, df, scale):
        x = as_float_array(value)
        nu = as_float_array(df)
        psi = as_float_array(scale)
        d = x.shape[-1]
        # tr(Psi X^-1) computed via solve to avoid an explicit inverse.
        xinvpsi = np.linalg.solve(x, np.broadcast_to(psi, x.shape))
        trace = np.trace(xinvpsi, axis1=-2, axis2=-1)
        return (
            0.5 * nu * _logdet(psi)
            - 0.5 * nu * d * np.log(2.0)
            - multigammaln(nu / 2.0, d)
            - 0.5 * (nu + d + 1.0) * _logdet(x)
            - 0.5 * trace
        )

    def sample(self, rng, df, scale, size=None):
        df_arr = np.asarray(df, dtype=np.float64)
        psi = as_float_array(scale)
        if df_arr.ndim > 0 or psi.ndim > 2:
            # Batched parameters: one draw per leading index.
            batch = np.broadcast_shapes(df_arr.shape, psi.shape[:-2])
            df_b = np.broadcast_to(df_arr, batch).reshape(-1)
            psi_b = np.broadcast_to(psi, batch + psi.shape[-2:]).reshape(
                (-1,) + psi.shape[-2:]
            )
            draws = np.stack(
                [self.sample(rng, float(n), p) for n, p in zip(df_b, psi_b)]
            )
            return draws.reshape(batch + psi.shape[-2:])
        nu = float(df_arr)
        d = psi.shape[-1]
        if size is not None:
            return np.stack([self.sample(rng, nu, psi) for _ in range(int(size))])
        # X ~ InvWishart(nu, Psi)  <=>  X^-1 ~ Wishart(nu, Psi^-1).
        chol_inv_psi = np.linalg.cholesky(np.linalg.inv(psi))
        a = np.zeros((d, d))
        idx = np.tril_indices(d, -1)
        a[idx] = rng.standard_normal(len(idx[0]))
        # Chi-squared marginals on the diagonal (Bartlett).
        a[np.diag_indices(d)] = np.sqrt(
            [rng.gamma((nu - i) / 2.0, 2.0) for i in range(d)]
        )
        factor = chol_inv_psi @ a
        wishart = factor @ factor.T
        return np.linalg.inv(wishart)
