"""Registry mapping surface-syntax distribution names to implementations.

The frontend type checker, the conjugacy detector, the AD pass, and the
backends all look distributions up here, so adding a new primitive
distribution is a single :func:`register` call (plus, for Gibbs support,
a conjugacy rule -- see :mod:`repro.core.kernel.conjugacy`).
"""

from __future__ import annotations

from repro.errors import TypeCheckError
from repro.runtime.distributions.base import Distribution
from repro.runtime.distributions.bernoulli import Bernoulli
from repro.runtime.distributions.binomial import Binomial
from repro.runtime.distributions.beta import Beta
from repro.runtime.distributions.categorical import Categorical
from repro.runtime.distributions.dirichlet import Dirichlet
from repro.runtime.distributions.exponential import Exponential
from repro.runtime.distributions.gamma import Gamma
from repro.runtime.distributions.inv_wishart import InvWishart
from repro.runtime.distributions.laplace import Laplace
from repro.runtime.distributions.mvnormal import MvNormal
from repro.runtime.distributions.normal import Normal
from repro.runtime.distributions.poisson import Poisson
from repro.runtime.distributions.student_t import StudentT
from repro.runtime.distributions.uniform import Uniform

_REGISTRY: dict[str, Distribution] = {}


def register(dist: Distribution) -> Distribution:
    """Add a distribution to the registry (last registration wins)."""
    _REGISTRY[dist.name] = dist
    return dist


def lookup(name: str) -> Distribution:
    """Find a distribution by surface name, or raise ``TypeCheckError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TypeCheckError(
            f"unknown distribution {name!r}; known distributions: {known}"
        ) from None


def is_distribution(name: str) -> bool:
    return name in _REGISTRY


def all_distributions() -> dict[str, Distribution]:
    return dict(_REGISTRY)


for _dist in (
    Normal(),
    MvNormal(),
    Categorical(),
    Dirichlet(),
    Bernoulli(),
    Exponential(),
    Gamma(),
    Beta(),
    InvWishart(),
    Poisson(),
    Uniform(),
    Binomial(),
    Laplace(),
    StudentT(),
):
    register(_dist)
