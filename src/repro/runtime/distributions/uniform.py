"""Continuous uniform distribution on ``[lo, hi]``."""

from __future__ import annotations

import numpy as np

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Uniform(Distribution):
    name = "Uniform"
    params = (ParamSpec("lo", REAL), ParamSpec("hi", REAL))
    result_ty = REAL
    support = "bounded_real"

    def logpdf(self, value, lo, hi):
        x, a, b = map(as_float_array, (value, lo, hi))
        inside = (x >= a) & (x <= b)
        with np.errstate(divide="ignore"):
            return np.where(inside, -np.log(b - a), -np.inf)

    def sample(self, rng, lo, hi, size=None):
        return rng.uniform(as_float_array(lo), as_float_array(hi), size=size)

    def grad_value(self, value, lo, hi):
        x = as_float_array(value)
        shape = np.broadcast_shapes(
            x.shape, as_float_array(lo).shape, as_float_array(hi).shape
        )
        return np.zeros(shape)
