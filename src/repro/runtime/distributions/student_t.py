"""Student-t distribution ``StudentT(df, loc, scale)``.

Heavy-tailed alternative to the Normal; the robust-regression prior of
choice.  Fully differentiable in value, location, and scale.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma, gammaln

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class StudentT(Distribution):
    name = "StudentT"
    params = (
        ParamSpec("df", REAL),
        ParamSpec("loc", REAL),
        ParamSpec("scale", REAL),
    )
    result_ty = REAL
    support = "real"

    def logpdf(self, value, df, loc, scale):
        x, nu, m, s = map(as_float_array, (value, df, loc, scale))
        z = (x - m) / s
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (
                gammaln((nu + 1.0) / 2.0)
                - gammaln(nu / 2.0)
                - 0.5 * np.log(nu * np.pi)
                - np.log(s)
                - (nu + 1.0) / 2.0 * np.log1p(z * z / nu)
            )
        return np.where((s > 0) & (nu > 0), out, -np.inf)

    def sample(self, rng, df, loc, scale, size=None):
        nu, m, s = map(as_float_array, (df, loc, scale))
        return m + s * rng.generator.standard_t(nu, size=size)

    def grad_value(self, value, df, loc, scale):
        x, nu, m, s = map(as_float_array, (value, df, loc, scale))
        z = (x - m) / s
        return -(nu + 1.0) * z / (nu + z * z) / s

    def grad_param(self, index, value, df, loc, scale):
        x, nu, m, s = map(as_float_array, (value, df, loc, scale))
        z = (x - m) / s
        if index == 1:  # d/d df
            return (
                0.5 * digamma((nu + 1.0) / 2.0)
                - 0.5 * digamma(nu / 2.0)
                - 0.5 / nu
                - 0.5 * np.log1p(z * z / nu)
                + (nu + 1.0) / 2.0 * (z * z / nu**2) / (1.0 + z * z / nu)
            )
        if index == 2:  # d/d loc
            return (nu + 1.0) * z / (nu + z * z) / s
        if index == 3:  # d/d scale
            return (-1.0 + (nu + 1.0) * z * z / (nu + z * z)) / s
        raise IndexError(f"StudentT has 3 parameters, not {index}")
