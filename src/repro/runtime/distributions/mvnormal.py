"""Multivariate normal distribution ``MvNormal(mean, cov)``.

``value`` and ``mean`` carry shape ``(..., D)``; ``cov`` is ``(D, D)``
or batched ``(..., D, D)``.  Log densities are computed via Cholesky
factors for stability, and the batched path is what lets a ``Par`` loop
over mixture components or data points collapse into one call.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import MAT_REAL, VEC_REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array

_LOG_2PI = float(np.log(2.0 * np.pi))


def _chol(cov: np.ndarray) -> np.ndarray:
    return np.linalg.cholesky(cov)


def _solve_chol(chol: np.ndarray, b: np.ndarray, matrix: bool = False) -> np.ndarray:
    """Solve ``(L L^T) x = b`` given the lower Cholesky factor ``L``.

    ``b`` is a (batch of) vector(s) unless ``matrix`` is set, in which
    case its last two axes form a matrix right-hand side.
    """
    rhs = b if matrix else b[..., None]
    y = np.linalg.solve(chol, rhs)
    x = np.linalg.solve(np.swapaxes(chol, -1, -2), y)
    return x if matrix else x[..., 0]


class MvNormal(Distribution):
    name = "MvNormal"
    params = (ParamSpec("mean", VEC_REAL), ParamSpec("cov", MAT_REAL))
    result_ty = VEC_REAL
    support = "real_vec"

    def event_shape(self, mean, cov):
        return (np.asarray(mean).shape[-1],)

    def logpdf(self, value, mean, cov):
        x, mu, sigma = map(as_float_array, (value, mean, cov))
        diff = x - mu
        chol = _chol(sigma)
        # Solve L y = diff  =>  maha = |y|^2 = diff^T Sigma^-1 diff.
        y = np.linalg.solve(chol, diff[..., None])[..., 0]
        maha = np.sum(y * y, axis=-1)
        logdet = 2.0 * np.sum(np.log(np.diagonal(chol, axis1=-2, axis2=-1)), axis=-1)
        d = x.shape[-1]
        return -0.5 * (d * _LOG_2PI + logdet + maha)

    def sample(self, rng, mean, cov, size=None):
        mu, sigma = as_float_array(mean), as_float_array(cov)
        chol = _chol(sigma)
        if size is None:
            shape = np.broadcast_shapes(mu.shape, chol.shape[:-1])
        else:
            shape = (size,) + mu.shape if isinstance(size, int) else tuple(size) + mu.shape
        z = rng.standard_normal(shape)
        return mu + np.einsum("...ij,...j->...i", chol, z)

    def grad_value(self, value, mean, cov):
        x, mu, sigma = map(as_float_array, (value, mean, cov))
        return -_solve_chol(_chol(sigma), x - mu)

    def grad_param(self, index, value, mean, cov):
        x, mu, sigma = map(as_float_array, (value, mean, cov))
        if index == 1:  # d/d mean = Sigma^-1 (x - mu)
            return _solve_chol(_chol(sigma), x - mu)
        if index == 2:  # d/d cov = 0.5 (S^-1 d d^T S^-1 - S^-1)
            chol = _chol(sigma)
            sd = _solve_chol(chol, x - mu)
            d = sigma.shape[-1]
            inv = _solve_chol(
                chol, np.broadcast_to(np.eye(d), sigma.shape).copy(), matrix=True
            )
            return 0.5 * (sd[..., :, None] * sd[..., None, :] - inv)
        raise IndexError(f"MvNormal has 2 parameters, not {index}")
