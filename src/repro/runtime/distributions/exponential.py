"""Exponential distribution with *rate* parameter ``lambda``."""

from __future__ import annotations

import numpy as np

from repro.core.types import REAL
from repro.runtime.distributions.base import Distribution, ParamSpec, as_float_array


class Exponential(Distribution):
    name = "Exponential"
    params = (ParamSpec("rate", REAL),)
    result_ty = REAL
    support = "pos_real"

    def logpdf(self, value, rate):
        x, lam = as_float_array(value), as_float_array(rate)
        return np.where(x >= 0, np.log(lam) - lam * x, -np.inf)

    def sample(self, rng, rate, size=None):
        lam = as_float_array(rate)
        return rng.exponential(1.0 / lam, size=size)

    def grad_value(self, value, rate):
        x, lam = as_float_array(value), as_float_array(rate)
        return np.broadcast_to(-lam, np.broadcast_shapes(x.shape, lam.shape)).copy()

    def grad_param(self, index, value, rate):
        if index != 1:
            raise IndexError(f"Exponential has 1 parameter, not {index}")
        x, lam = as_float_array(value), as_float_array(rate)
        return 1.0 / lam - x
