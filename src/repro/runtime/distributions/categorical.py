"""Categorical distribution over ``{0, ..., K-1}`` given a probability vector."""

from __future__ import annotations

import numpy as np

from repro.core.types import INT, VEC_REAL
from repro.runtime.distributions.base import (
    Distribution,
    ParamSpec,
    as_float_array,
    as_int_array,
)


class Categorical(Distribution):
    name = "Categorical"
    params = (ParamSpec("probs", VEC_REAL),)
    result_ty = INT
    is_discrete = True
    support = "int_range"

    def logpdf(self, value, probs):
        k = as_int_array(value)
        p = as_float_array(probs)
        batch = np.broadcast_shapes(k.shape, p.shape[:-1])
        k = np.broadcast_to(k, batch)
        p = np.broadcast_to(p, batch + p.shape[-1:])
        picked = np.take_along_axis(p, k[..., None], axis=-1)[..., 0]
        with np.errstate(divide="ignore"):
            return np.log(picked)

    def sample(self, rng, probs, size=None):
        p = as_float_array(probs)
        if size is not None:
            p = np.broadcast_to(p, (size,) + p.shape[-1:])
        return rng.categorical(p)

    def support_size(self, probs) -> int:
        return as_float_array(probs).shape[-1]

    def grad_param(self, index, value, probs):
        if index != 1:
            raise IndexError(f"Categorical has 1 parameter, not {index}")
        k = as_int_array(value)
        p = as_float_array(probs)
        onehot = np.zeros(k.shape + p.shape[-1:], dtype=np.float64)
        np.put_along_axis(onehot, k[..., None], 1.0, axis=-1)
        return onehot / p
