"""Bernoulli distribution over ``{0, 1}``."""

from __future__ import annotations

import numpy as np

from repro.core.types import INT, REAL
from repro.runtime.distributions.base import (
    Distribution,
    ParamSpec,
    as_float_array,
    as_int_array,
)


class Bernoulli(Distribution):
    name = "Bernoulli"
    params = (ParamSpec("p", REAL),)
    result_ty = INT
    is_discrete = True
    support = "binary"

    def logpdf(self, value, p):
        x = as_int_array(value)
        prob = as_float_array(p)
        with np.errstate(divide="ignore"):
            return np.where(x == 1, np.log(prob), np.log1p(-prob))

    def sample(self, rng, p, size=None):
        prob = as_float_array(p)
        shape = prob.shape if size is None else (size,) + prob.shape
        return (rng.uniform(size=shape if shape else None) < prob).astype(np.int64)

    def support_size(self, p) -> int:
        return 2

    def grad_param(self, index, value, p):
        if index != 1:
            raise IndexError(f"Bernoulli has 1 parameter, not {index}")
        x = as_float_array(value)
        prob = as_float_array(p)
        return x / prob - (1.0 - x) / (1.0 - prob)
