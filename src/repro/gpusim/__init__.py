"""GPU simulator substrate.

The paper evaluates on an Nvidia Titan Black via Cuda/Nvcc.  Offline
and GPU-less, this package substitutes a SIMT *device model*: kernels
execute numerically on the host (NumPy), while the device accounts
simulated time for kernel launches, lane-parallel execution, atomic
contention, tree reductions, and host<->device transfers.  The cost
model charges for exactly the phenomena the paper's GPU findings hinge
on, so speedup *shapes* (parallelism wins on big latent spaces, atomic
contention penalises naive AtmPar code, summation blocks fix it)
reproduce even though absolute seconds do not.
"""

from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import Device

__all__ = ["CostModel", "Device"]
