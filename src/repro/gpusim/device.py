"""The simulated device: accumulates time charged by generated code.

Generated GPU functions receive a :class:`Device` and call its charge
methods as they execute each Blk-IL block.  The device keeps both the
running clock and per-category counters so benchmarks and tests can
inspect *why* time was spent (e.g. how much went to atomic contention
before/after the summation-block ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.costmodel import CostModel


@dataclass
class DeviceStats:
    kernels_launched: int = 0
    reduce_kernels: int = 0
    seq_blocks: int = 0
    par_time: float = 0.0
    atomic_time: float = 0.0
    reduce_time: float = 0.0
    seq_time: float = 0.0
    transfer_time: float = 0.0

    def total(self) -> float:
        return (
            self.par_time
            + self.atomic_time
            + self.reduce_time
            + self.seq_time
            + self.transfer_time
        )


class Device:
    """A simulated SIMT device with a cost-model clock."""

    def __init__(self, cost: CostModel | None = None):
        self.cost = cost or CostModel()
        self.stats = DeviceStats()

    # -- charges called from generated code -------------------------------

    def par(self, threads: int, ops: int, atomic_locations: int | None = None) -> None:
        """A ``parBlk`` launch; ``atomic_locations`` given for AtmPar
        blocks whose increments were not converted to reductions."""
        self.stats.kernels_launched += 1
        self.stats.par_time += self.cost.par_time(int(threads), int(ops))
        if atomic_locations is not None:
            self.stats.atomic_time += self.cost.atomic_penalty(
                int(threads), int(atomic_locations)
            )

    def reduce(self, threads: int, ops: int) -> None:
        """A ``sumBlk`` map-reduce launch."""
        self.stats.reduce_kernels += 1
        self.stats.reduce_time += self.cost.reduce_time(int(threads), int(ops))

    def seq(self, ops: int) -> None:
        """Sequential device code (``seqBlk`` or a fallback loop)."""
        self.stats.seq_blocks += 1
        self.stats.seq_time += self.cost.seq_time(int(ops))

    def transfer(self, nbytes: int) -> None:
        self.stats.transfer_time += self.cost.transfer_time(int(nbytes))

    # -- inspection --------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Simulated device seconds so far."""
        return self.stats.total()

    def reset(self) -> None:
        self.stats = DeviceStats()

    def snapshot(self) -> DeviceStats:
        from copy import copy

        return copy(self.stats)
