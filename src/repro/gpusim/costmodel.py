"""The device cost model.

Parameters loosely follow a Kepler-class card (the paper's Titan
Black): a few thousand resident lanes, microsecond-scale kernel-launch
overhead, nanosecond-scale per-lane operation throughput, and a heavy
penalty for serialised atomic traffic on hot locations.

Only *ratios* matter for reproducing the paper's trends; the absolute
scale is calibrated once in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    #: Effective number of lanes that execute concurrently.  A
    #: Kepler-class card has thousands of CUDA cores, but the Gibbs
    #: kernels this compiler emits are memory-bound (scatters, gathers,
    #: atomics), so the *effective* concurrency is far lower; this value
    #: is calibrated so the Figure 12 speedup band lands near the
    #: paper's 2.7-5.8x (see EXPERIMENTS.md).
    width: int = 256
    #: Seconds per kernel launch (driver + dispatch overhead).
    launch_overhead: float = 8e-6
    #: Seconds per primitive operation per lane.
    op_time: float = 1.2e-9
    #: Seconds per atomic memory operation when serialised.
    atomic_time: float = 1.5e-8
    #: Slowdown of a single device thread running sequential code
    #: relative to a lane executing within a full kernel.
    seq_penalty: float = 24.0
    #: Host<->device copy bandwidth, bytes per second (PCIe-3 x16-ish).
    transfer_bandwidth: float = 12e9

    def par_time(self, threads: int, ops: int) -> float:
        """A data-parallel kernel: launch + waves of ``width`` lanes."""
        if threads <= 0:
            return self.launch_overhead
        waves = math.ceil(threads / self.width)
        return self.launch_overhead + waves * ops * self.op_time

    def atomic_penalty(self, threads: int, locations: int) -> float:
        """Serialisation cost of atomics: traffic concentrates on
        ``locations`` cells, so at most ``min(locations, width)`` atomic
        updates proceed concurrently."""
        if threads <= 0:
            return 0.0
        concurrency = max(1, min(locations, self.width))
        return self.atomic_time * threads / concurrency

    def reduce_time(self, threads: int, ops: int) -> float:
        """A map-reduce kernel: the map waves plus a log-tree combine."""
        if threads <= 0:
            return self.launch_overhead
        waves = math.ceil(threads / self.width)
        tree = math.ceil(math.log2(max(2, threads))) * self.op_time * waves
        return self.launch_overhead + waves * ops * self.op_time + tree

    def seq_time(self, ops: int) -> float:
        """Sequential device code: one lane, penalised."""
        return ops * self.op_time * self.seq_penalty

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.transfer_bandwidth
