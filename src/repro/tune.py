"""Profile-guided schedule autotuning: measured trial-sweep tournaments.

The paper (Section 4.2) frames kernel selection as a one-shot choice:
either the user pins a schedule or the heuristic picks one.  Both are
static -- but the best schedule is model- *and* data-size-dependent
(Tristan et al., 2014): scalar conjugate Gibbs beats batched MH on ten
elements and loses badly on ten thousand.  This module closes the loop
with measurement:

1. **Enumerate** a bounded candidate set around the baseline schedule:
   per-block method alternatives (Gibbs vs. MH vs. Slice/ESlice where
   each validates), ``batch=off`` twins for element-wise updates,
   HMC<->NUTS for the gradient block, and ``fuse_gradient`` /
   ``flat_state`` compile-option variants.
2. **Trial** each candidate with a short probe round and, for the
   survivors, a longer trial round -- every trial on its own fresh
   :class:`~repro.runtime.rng.Rng` stream, so the caller's production
   stream is never advanced: a tuned-then-sampled run is bitwise
   identical to compiling the winner's schedule directly.
3. **Score** with measured seconds/sweep (the sweep profiler's
   attribution rides into the report); gradient-method swaps are judged
   on ESS/second from the online monitors instead, since a NUTS sweep
   costs more but may mix far better.
4. **Record** the whole tournament as ``tune.*`` ledger entries on the
   winning sampler (surfaced by ``explain()``, the CLI table, and the
   HTML report's "Schedule tournament" section).
5. **Cache** the verdict keyed by the *data-shape* fingerprint
   (:func:`repro.core.compiler.shape_cache_key`): repeat compiles and
   repeat serve requests with the same model shape skip the search.
   The cache is persistable to disk.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_model, shape_cache_key
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.frontend.typecheck import type_of_value
from repro.core.kernel.heuristic import heuristic_schedule
from repro.core.kernel.ir import KBase, UpdateMethod, compose, flatten
from repro.core.kernel.schedule import format_schedule, format_update, parse_schedule
from repro.core.kernel.validate import validate_schedule
from repro.core.options import CompileOptions
from repro.errors import ParseError, ReproError, ScheduleError
from repro.runtime.rng import Rng
from repro.telemetry.monitors import OnlineEss

#: Trials always sample from fresh streams seeded with this constant --
#: never from the caller's seed -- so tuning cannot perturb production
#: draws.
TRIAL_SEED = 0x7A11

#: A candidate whose probe-round s/sweep exceeds the round's best by
#: this factor is eliminated without a trial round.
ELIMINATION_FACTOR = 3.0

#: The winner must beat the baseline by at least this relative margin
#: (hysteresis: measurement noise must not flip schedules).
MIN_GAIN = 0.05

#: CompileOptions fields the tuner is allowed to vary per candidate.
_TUNABLE_OPTION_FIELDS = ("fuse_gradient", "flat_state")

_ELEMENTWISE = (UpdateMethod.MH, UpdateMethod.SLICE, UpdateMethod.ESLICE)


# ----------------------------------------------------------------------
# The verdict cache.
# ----------------------------------------------------------------------


@dataclass
class TuningCacheStats:
    """Hit/miss counters for the shape-keyed verdict cache."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


_verdicts: dict[str, dict] = {}
_verdict_stats = TuningCacheStats()


def tuning_cache_stats() -> TuningCacheStats:
    """The live hit/miss counters (process-wide)."""
    return _verdict_stats


def clear_tuning_cache() -> None:
    """Drop every cached verdict and reset the counters."""
    _verdicts.clear()
    _verdict_stats.hits = 0
    _verdict_stats.misses = 0


def save_tuning_cache(path) -> int:
    """Persist the verdict cache as JSON; returns the verdict count."""
    with open(path, "w") as f:
        json.dump(_verdicts, f, indent=2, sort_keys=True)
    return len(_verdicts)


def load_tuning_cache(path) -> int:
    """Merge verdicts persisted by :func:`save_tuning_cache`; returns
    how many were loaded."""
    with open(path) as f:
        loaded = json.load(f)
    if not isinstance(loaded, dict):
        raise ReproError(f"not a tuning-cache file: {path}")
    _verdicts.update(loaded)
    return len(loaded)


# ----------------------------------------------------------------------
# Candidates.
# ----------------------------------------------------------------------


@dataclass
class Candidate:
    """One tournament entry: a schedule string plus compile options."""

    label: str
    schedule: str
    options: CompileOptions
    #: What was varied relative to the baseline: ``baseline``,
    #: ``method``, ``batch``, ``grad-method``, or ``grad-options``.
    kind: str
    probe_s_per_sweep: float | None = None
    s_per_sweep: float | None = None
    ess_per_s: float | None = None
    #: ``winner`` / ``baseline`` / ``contender`` / ``eliminated`` /
    #: ``failed``.
    verdict: str = "pending"
    #: Relative improvement over the baseline (s/sweep ratio - 1, or
    #: ESS/s ratio - 1 for gradient-method swaps).
    gain: float | None = None
    error: str | None = None
    #: Top per-update attribution rows from the trial-round profile.
    profile_updates: list = field(default_factory=list)

    def options_delta(self, base: CompileOptions) -> dict:
        return {
            f: getattr(self.options, f)
            for f in _TUNABLE_OPTION_FIELDS
            if getattr(self.options, f) != getattr(base, f)
        }

    def to_dict(self, base_options: CompileOptions) -> dict:
        return {
            "label": self.label,
            "schedule": self.schedule,
            "options": self.options_delta(base_options),
            "kind": self.kind,
            "probe_s_per_sweep": self.probe_s_per_sweep,
            "s_per_sweep": self.s_per_sweep,
            "ess_per_s": self.ess_per_s,
            "verdict": self.verdict,
            "gain": self.gain,
            "error": self.error,
        }


def _validates(kernel, fd, info, options) -> bool:
    """Does this candidate kernel survive the schedule validator?"""
    try:
        validate_schedule(
            parse_schedule(format_schedule(kernel)), fd, info,
            categorical_rule=options.categorical_rule,
        )
    except (ScheduleError, ParseError, ReproError):
        return False
    return True


def _swap(updates, i, new_upd):
    out = list(updates)
    out[i] = new_upd
    return compose(out)


def enumerate_candidates(
    baseline_kernel, fd, info, options: CompileOptions,
    max_candidates: int = 12,
) -> tuple[list[Candidate], int]:
    """The bounded candidate set around a baseline schedule.

    One change per candidate: a single update's method, one update's
    ``batch`` flag, the gradient block's method, or one gradient
    compile option.  Returns ``(candidates, dropped)`` where
    ``dropped`` counts eligible candidates cut by ``max_candidates``
    (baseline always survives the cap and comes first).
    """
    updates = flatten(baseline_kernel)
    baseline = Candidate(
        label="baseline",
        schedule=format_schedule(baseline_kernel),
        options=options,
        kind="baseline",
    )
    out: list[Candidate] = [baseline]
    seen = {(baseline.schedule, repr(options))}

    def add(label, kernel, opts, kind) -> None:
        sched = format_schedule(kernel)
        key = (sched, repr(opts))
        if key in seen:
            return
        if not _validates(kernel, fd, info, opts):
            return
        seen.add(key)
        out.append(Candidate(label=label, schedule=sched, options=opts, kind=kind))

    for i, upd in enumerate(updates):
        if upd.method.needs_gradient:
            other = (
                UpdateMethod.NUTS
                if upd.method is UpdateMethod.HMC
                else UpdateMethod.HMC
            )
            # NUTS chooses its own trajectory length; ``steps`` is
            # HMC-only.  Leaving ``step_size`` unpinned keeps warmup
            # adaptation eligibility identical to the baseline.
            opts = tuple(
                (k, v) for k, v in upd.options
                if not (other is UpdateMethod.NUTS and k == "steps")
            )
            swapped = KBase(method=other, unit=upd.unit, options=opts)
            add(f"{other.value} {upd.unit}", _swap(updates, i, swapped),
                options, "grad-method")
            if options.fuse_gradient:
                add(f"{format_update(upd)} fuse_gradient=off",
                    compose(updates), options.replace(fuse_gradient=False),
                    "grad-options")
            if options.flat_state:
                add(f"{format_update(upd)} flat_state=off",
                    compose(updates), options.replace(flat_state=False),
                    "grad-options")
            continue
        if not upd.unit.is_single:
            continue
        for method in (UpdateMethod.GIBBS, *_ELEMENTWISE):
            if method is upd.method:
                continue
            alt = KBase(method=method, unit=upd.unit)
            add(f"{method.value} {upd.unit}", _swap(updates, i, alt),
                options, "method")
        if upd.method in _ELEMENTWISE and options.batch_elements:
            if upd.opt("batch") is None:
                off = KBase(
                    method=upd.method, unit=upd.unit,
                    options=upd.options + (("batch", "off"),),
                )
                add(f"{upd.method.value}[batch=off] {upd.unit}",
                    _swap(updates, i, off), options, "batch")

    dropped = max(0, len(out) - max_candidates)
    return out[:max_candidates], dropped


# ----------------------------------------------------------------------
# Trials.
# ----------------------------------------------------------------------


def _grad_vars(baseline_kernel) -> tuple[str, ...]:
    for upd in flatten(baseline_kernel):
        if upd.method.needs_gradient:
            return upd.unit.names
    return ()


def _first_component(arr: np.ndarray) -> np.ndarray:
    a = np.asarray(arr, dtype=float)
    return a.reshape(a.shape[0], -1)[:, 0] if a.ndim > 1 else a


def _trial(
    cand: Candidate, source, hyper_values, data_values, proposals,
    sweeps: int, collect: tuple[str, ...], ess_vars: tuple[str, ...],
) -> tuple[float, float | None, list]:
    """One measured run of ``sweeps`` trial sweeps on a fresh stream.

    Returns ``(s_per_sweep, ess_per_s | None, profile_update_rows)``.
    """
    sampler = compile_model(
        source, hyper_values, data_values,
        options=cand.options, schedule=cand.schedule, proposals=proposals,
    )
    result = sampler.sample(
        num_samples=sweeps, seed=Rng(TRIAL_SEED), collect=collect,
        profile=True,
    )
    times = np.asarray(result.sweep_times, dtype=float)
    if times.size > 1:
        # The first sweep pays one-off costs (allocator warm-up, page
        # faults); the median of the rest is the steady-state cost.
        sps = float(np.median(times[1:]))
    elif result.profile is not None:
        sps = float(result.profile.seconds_per_sweep)
    else:
        sps = float(times.mean()) if times.size else 0.0
    sps = max(sps, 1e-9)

    ess_per_s = None
    measured = [v for v in ess_vars if v in result.samples]
    if measured:
        worst = None
        batch = max(2, sweeps // 5)
        for var in measured:
            monitor = OnlineEss(batch_size=batch)
            for value in _first_component(result.array(var)):
                monitor.update(float(value))
            e = monitor.ess()
            if not np.isnan(e):
                worst = e if worst is None else min(worst, e)
        if worst is not None:
            ess_per_s = float(worst) / (sps * sweeps)

    rows = []
    if result.profile is not None:
        rows = [
            {"name": r["name"], "seconds": r["seconds"]}
            for r in result.profile.updates
        ]
    return sps, ess_per_s, rows


# ----------------------------------------------------------------------
# The tournament.
# ----------------------------------------------------------------------


def autotune(
    source: str,
    hyper_values: dict,
    data_values: dict,
    *,
    options: CompileOptions | None = None,
    schedule: str | None = None,
    proposals: dict | None = None,
    probe_sweeps: int = 4,
    trial_sweeps: int = 16,
    max_candidates: int = 12,
    min_gain: float = MIN_GAIN,
    use_cache: bool = True,
    executor: str | None = None,
    n_workers: int | None = None,
):
    """Tune the schedule by measurement and compile the winner.

    Returns a :class:`~repro.core.sampler.CompiledSampler` compiled
    with the tournament winner's schedule string and options, carrying
    the tournament as ``sampler.tune_report`` plus ``tune.*`` ledger
    entries.  Sampling from it with the caller's seed is bitwise
    identical to compiling the winner's schedule directly: trials run
    on their own fresh streams.

    When ``use_cache`` is on and the model's shape fingerprint has a
    cached verdict, the search is skipped entirely and the winner is
    compiled directly (``tune_report["cache"] == "hit"``).

    ``executor="processes"`` pre-warms the winner's worker pool so a
    following multi-chain run lands on resident workers.
    """
    options = options or CompileOptions()
    t0 = time.perf_counter()
    shape_key = shape_cache_key(source, hyper_values, data_values, options, schedule)

    if use_cache and shape_key in _verdicts:
        _verdict_stats.hits += 1
        verdict = _verdicts[shape_key]
        report = dict(verdict["tournament"])
        report["cache"] = "hit"
        report["tuning_seconds"] = time.perf_counter() - t0
        return _finish(
            source, hyper_values, data_values, options, proposals,
            verdict["schedule"], verdict.get("options_delta") or {},
            report, executor, n_workers,
        )
    if use_cache:
        _verdict_stats.misses += 1

    # -- baseline kernel (frontend runs once for the whole tournament) --
    model = parse_model(source)
    missing = [h for h in model.hypers if h not in hyper_values]
    if missing:
        raise ReproError(f"missing hyper-parameter values: {missing}")
    hyper_types = {k: type_of_value(v) for k, v in hyper_values.items()}
    info = analyze_model(model, hyper_types)
    fd = lower_and_factorize(model)
    if schedule is not None:
        baseline_kernel = validate_schedule(
            parse_schedule(schedule), fd, info,
            categorical_rule=options.categorical_rule,
        )
    else:
        baseline_kernel = heuristic_schedule(
            fd, info, categorical_rule=options.categorical_rule
        )

    candidates, dropped = enumerate_candidates(
        baseline_kernel, fd, info, options, max_candidates=max_candidates
    )
    baseline = candidates[0]
    grad_vars = _grad_vars(baseline_kernel)
    collect = grad_vars or (tuple(info.param_names())[:1] or None)

    # -- probe round: every candidate, few sweeps ----------------------
    for cand in candidates:
        try:
            cand.probe_s_per_sweep, _, _ = _trial(
                cand, source, hyper_values, data_values, proposals,
                probe_sweeps, collect, (),
            )
        except Exception as exc:  # candidate compiles are speculative
            if cand is baseline:
                raise
            cand.verdict = "failed"
            cand.error = f"{type(exc).__name__}: {exc}"

    probed = [c for c in candidates if c.probe_s_per_sweep is not None]
    best_probe = min(c.probe_s_per_sweep for c in probed)
    for cand in probed:
        if (
            cand is not baseline
            and cand.probe_s_per_sweep > ELIMINATION_FACTOR * best_probe
        ):
            cand.verdict = "eliminated"

    # -- trial round: survivors, longer sweeps -------------------------
    for cand in probed:
        if cand.verdict == "eliminated":
            continue
        ess_vars = grad_vars if cand.kind in ("baseline", "grad-method") else ()
        try:
            cand.s_per_sweep, cand.ess_per_s, cand.profile_updates = _trial(
                cand, source, hyper_values, data_values, proposals,
                trial_sweeps, collect, ess_vars,
            )
        except Exception as exc:
            if cand is baseline:
                raise
            cand.verdict = "failed"
            cand.error = f"{type(exc).__name__}: {exc}"

    # -- scoring -------------------------------------------------------
    contenders = []
    for cand in candidates:
        if cand is baseline or cand.s_per_sweep is None:
            continue
        if (
            cand.kind == "grad-method"
            and cand.ess_per_s is not None
            and baseline.ess_per_s is not None
        ):
            cand.gain = cand.ess_per_s / baseline.ess_per_s - 1.0
        else:
            cand.gain = baseline.s_per_sweep / cand.s_per_sweep - 1.0
        contenders.append(cand)

    winner = max(contenders, key=lambda c: c.gain, default=None)
    if winner is None or winner.gain < min_gain:
        winner = baseline
    baseline.gain = 0.0
    for cand in contenders:
        if cand.verdict == "pending":
            cand.verdict = "contender"
    winner.verdict = "winner"
    if baseline.verdict == "pending":
        baseline.verdict = "baseline"

    report = {
        "cache": "miss",
        "shape_key": shape_key,
        "baseline_schedule": baseline.schedule,
        "winner": winner.to_dict(options),
        "margin": winner.gain,
        "probe_sweeps": probe_sweeps,
        "trial_sweeps": trial_sweeps,
        "dropped_candidates": dropped,
        "candidates": [c.to_dict(options) for c in candidates],
        "tuning_seconds": time.perf_counter() - t0,
    }
    verdict = {
        "schedule": winner.schedule,
        "options_delta": winner.options_delta(options),
        "tournament": report,
    }
    if use_cache:
        _verdicts[shape_key] = verdict
    return _finish(
        source, hyper_values, data_values, options, proposals,
        winner.schedule, verdict["options_delta"], report,
        executor, n_workers,
    )


def _finish(
    source, hyper_values, data_values, options, proposals,
    winner_schedule, options_delta, report, executor, n_workers,
):
    """Compile the winner, attach the tournament, prewarm its pool."""
    winner_options = (
        options.replace(**options_delta) if options_delta else options
    )
    sampler = compile_model(
        source, hyper_values, data_values,
        options=winner_options, schedule=winner_schedule, proposals=proposals,
    )
    sampler.tune_report = report
    if sampler.ledger is not None:
        _record_ledger(sampler.ledger, report)
    if executor == "processes":
        from repro.core.chains import default_workers, get_worker_pool

        get_worker_pool(sampler.spec, n_workers or default_workers(2))
    return sampler


def _record_ledger(ledger, report) -> None:
    for cand in report["candidates"]:
        sps = cand.get("s_per_sweep")
        probe = cand.get("probe_s_per_sweep")
        ess = cand.get("ess_per_s")
        if cand["verdict"] == "failed":
            reason = f"trial failed: {cand.get('error')}"
        elif cand["verdict"] == "eliminated":
            reason = (
                f"probe {probe:.3g} s/sweep dominated "
                f"(> {ELIMINATION_FACTOR:g}x best)"
            )
        else:
            reason = f"measured {sps:.3g} s/sweep"
            if ess is not None:
                reason += f", {ess:.3g} ESS/s"
            gain = cand.get("gain")
            if gain is not None and cand["verdict"] != "baseline":
                reason += f" ({gain:+.1%} vs. baseline)"
        ledger.record("tune.candidate", cand["label"], cand["verdict"], reason)
    winner = report["winner"]
    margin = report.get("margin")
    ledger.record(
        "tune.winner", winner["label"], winner["schedule"],
        "won the trial-sweep tournament"
        + (f" by {margin:+.1%}" if margin else " (baseline retained)"),
    )
    ledger.record(
        "tune.cache", report["shape_key"][:16], report["cache"],
        "verdict cache keyed by model + data-shape fingerprint"
        if report["cache"] == "miss"
        else "cached verdict reused; trial sweeps skipped",
    )


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def render_tournament(report: dict) -> str:
    """The tournament as an aligned console table (CLI ``--explain``)."""
    if not report:
        return "schedule tournament: not run"
    header = (
        f"schedule tournament ({len(report['candidates'])} candidates, "
        f"cache {report['cache']}, {report['tuning_seconds']:.2f} s):"
    )

    def fmt(v, spec=".3g"):
        return format(v, spec) if v is not None else "-"

    rows = [("candidate", "s/sweep", "ESS/s", "gain", "verdict")]
    for cand in report["candidates"]:
        rows.append((
            cand["label"],
            fmt(cand.get("s_per_sweep") or cand.get("probe_s_per_sweep")),
            fmt(cand.get("ess_per_s")),
            (
                format(cand["gain"], "+.1%")
                if cand.get("gain") is not None
                else "-"
            ),
            cand["verdict"],
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = [header]
    for r in rows:
        lines.append(
            "  " + "  ".join(
                f"{r[i]:<{widths[i]}}" if i == 0 else f"{r[i]:>{widths[i]}}"
                for i in range(5)
            )
        )
    if report.get("dropped_candidates"):
        lines.append(
            f"  ({report['dropped_candidates']} further candidates cut by "
            "the candidate cap)"
        )
    winner = report["winner"]
    lines.append(f"  winner: {winner['schedule']}")
    if winner.get("options"):
        lines.append(f"  winner options: {winner['options']}")
    return "\n".join(lines)
