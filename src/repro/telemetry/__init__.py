"""repro.telemetry: sampler statistics, pipeline tracing, monitors.

Three pillars of observability for compiled MCMC:

- :mod:`repro.telemetry.stats` -- typed per-sweep statistics for every
  base update of a composed kernel, captured into preallocated buffers
  and surfaced as ``SampleResult.stats`` / ``sample_stats``.
- :mod:`repro.telemetry.trace` -- a span API over compiler stages and
  runtime phases, exportable as a ``chrome://tracing`` JSON file.
- :mod:`repro.telemetry.monitors` -- streaming Welford moments, online
  split R-hat / ESS across live chains, and divergence-rate warnings.
"""

from repro.telemetry.monitors import (
    ConvergenceMonitor,
    DivergenceMonitor,
    OnlineEss,
    SplitRhat,
    Welford,
)
from repro.telemetry.stats import (
    BASE_FIELDS,
    SampleStats,
    StatField,
    UpdateStatsBuffer,
    allocate_stat_buffers,
    stack_chain_stats,
)
from repro.telemetry.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    instant,
    span,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "BASE_FIELDS",
    "ConvergenceMonitor",
    "DivergenceMonitor",
    "OnlineEss",
    "SampleStats",
    "SplitRhat",
    "StatField",
    "Tracer",
    "UpdateStatsBuffer",
    "Welford",
    "allocate_stat_buffers",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "instant",
    "span",
    "stack_chain_stats",
    "tracing_enabled",
    "write_trace",
]
