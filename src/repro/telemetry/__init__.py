"""repro.telemetry: sampler statistics, pipeline tracing, monitors.

Three pillars of observability for compiled MCMC:

- :mod:`repro.telemetry.stats` -- typed per-sweep statistics for every
  base update of a composed kernel, captured into preallocated buffers
  and surfaced as ``SampleResult.stats`` / ``sample_stats``.
- :mod:`repro.telemetry.trace` -- a span API over compiler stages and
  runtime phases, exportable as a ``chrome://tracing`` JSON file.
- :mod:`repro.telemetry.monitors` -- streaming Welford moments, online
  split R-hat / ESS across live chains, and divergence-rate warnings.
- :mod:`repro.telemetry.explain` -- the compiler decision ledger:
  structured ``(decision, choice, reason, provenance)`` entries for
  every silent choice the pipeline makes.
- :mod:`repro.telemetry.profile` -- the sweep profiler: wall-time
  attribution per update, generated declaration, and model statement.
- :mod:`repro.telemetry.report` -- the self-contained HTML (+ JSON)
  inference report bundling all of the above.
- :mod:`repro.telemetry.obslog` -- the structured JSON-lines event log
  with request correlation ids spanning the serve/chains stack.
- :mod:`repro.telemetry.metrics` -- fixed-bucket histograms and the
  Prometheus/OpenMetrics text exposition behind ``/v1/metrics``.
- :mod:`repro.telemetry.flight` -- the per-request flight recorder:
  a bounded ring of sweep digests dumped as a post-mortem artifact.
"""

from repro.telemetry.explain import CompileLedger, Decision
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.metrics import Histogram, render_prometheus
from repro.telemetry.monitors import (
    ConvergenceMonitor,
    DivergenceMonitor,
    OnlineEss,
    SplitRhat,
    Welford,
)
from repro.telemetry.obslog import (
    EventLog,
    ObsEvent,
    configure_event_log,
    current_rid,
    get_event_log,
    log_event,
    request_context,
)
from repro.telemetry.profile import SweepProfile, SweepProfiler
from repro.telemetry.report import render_html, report_data, write_report
from repro.telemetry.stats import (
    BASE_FIELDS,
    SampleStats,
    StatField,
    UpdateStatsBuffer,
    acceptance_ranges,
    allocate_stat_buffers,
    stack_chain_stats,
)
from repro.telemetry.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    instant,
    span,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "BASE_FIELDS",
    "CompileLedger",
    "ConvergenceMonitor",
    "Decision",
    "DivergenceMonitor",
    "EventLog",
    "FlightRecorder",
    "Histogram",
    "ObsEvent",
    "OnlineEss",
    "SampleStats",
    "SplitRhat",
    "StatField",
    "SweepProfile",
    "SweepProfiler",
    "Tracer",
    "UpdateStatsBuffer",
    "Welford",
    "acceptance_ranges",
    "allocate_stat_buffers",
    "configure_event_log",
    "current_rid",
    "disable_tracing",
    "enable_tracing",
    "get_event_log",
    "get_tracer",
    "instant",
    "log_event",
    "render_html",
    "render_prometheus",
    "report_data",
    "request_context",
    "span",
    "stack_chain_stats",
    "tracing_enabled",
    "write_report",
    "write_trace",
]
