"""repro.telemetry: sampler statistics, pipeline tracing, monitors.

Three pillars of observability for compiled MCMC:

- :mod:`repro.telemetry.stats` -- typed per-sweep statistics for every
  base update of a composed kernel, captured into preallocated buffers
  and surfaced as ``SampleResult.stats`` / ``sample_stats``.
- :mod:`repro.telemetry.trace` -- a span API over compiler stages and
  runtime phases, exportable as a ``chrome://tracing`` JSON file.
- :mod:`repro.telemetry.monitors` -- streaming Welford moments, online
  split R-hat / ESS across live chains, and divergence-rate warnings.
- :mod:`repro.telemetry.explain` -- the compiler decision ledger:
  structured ``(decision, choice, reason, provenance)`` entries for
  every silent choice the pipeline makes.
- :mod:`repro.telemetry.profile` -- the sweep profiler: wall-time
  attribution per update, generated declaration, and model statement.
- :mod:`repro.telemetry.report` -- the self-contained HTML (+ JSON)
  inference report bundling all of the above.
"""

from repro.telemetry.explain import CompileLedger, Decision
from repro.telemetry.monitors import (
    ConvergenceMonitor,
    DivergenceMonitor,
    OnlineEss,
    SplitRhat,
    Welford,
)
from repro.telemetry.profile import SweepProfile, SweepProfiler
from repro.telemetry.report import render_html, report_data, write_report
from repro.telemetry.stats import (
    BASE_FIELDS,
    SampleStats,
    StatField,
    UpdateStatsBuffer,
    acceptance_ranges,
    allocate_stat_buffers,
    stack_chain_stats,
)
from repro.telemetry.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    instant,
    span,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "BASE_FIELDS",
    "CompileLedger",
    "ConvergenceMonitor",
    "Decision",
    "DivergenceMonitor",
    "OnlineEss",
    "SampleStats",
    "SplitRhat",
    "StatField",
    "SweepProfile",
    "SweepProfiler",
    "Tracer",
    "UpdateStatsBuffer",
    "Welford",
    "acceptance_ranges",
    "allocate_stat_buffers",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "instant",
    "render_html",
    "report_data",
    "span",
    "stack_chain_stats",
    "tracing_enabled",
    "write_report",
    "write_trace",
]
