"""Fixed-bucket histograms and OpenMetrics/Prometheus text exposition.

:class:`Histogram` is the shared primitive behind both faces of
``/v1/metrics``: the JSON snapshot embeds :meth:`Histogram.to_dict`
and ``?format=prometheus`` renders the same counts as a Prometheus
histogram family (cumulative ``_bucket{le=...}`` series plus ``_sum``
and ``_count``), so the two views can never disagree.

Buckets are fixed at construction (no dynamic resizing — scrapes from
different moments must be mergeable), observation is O(buckets) with
no allocation, and everything is guarded by the owning
:class:`~repro.telemetry.requests.ServiceMetrics` lock, so the class
itself stays lock-free.
"""

from __future__ import annotations

#: Request wall-clock latency, seconds.
LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)
#: Queue wait before handling starts, seconds.
QUEUE_WAIT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)
#: Sampling throughput, sweeps per second.
SWEEPS_PER_S_BUCKETS = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)
#: Kept draws per request.
DRAWS_BUCKETS = (
    0.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 10_000.0, 100_000.0,
)
#: Divergent-sweep fraction per request.
DIVERGENCE_RATE_BUCKETS = (0.0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5)


def format_le(bound: float) -> str:
    """Prometheus ``le`` label text: integral bounds drop the ``.0``."""
    if bound == float("inf"):
        return "+Inf"
    if float(bound) == int(bound):
        return str(int(bound))
    return repr(float(bound))


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are upper bounds in increasing order; the implicit
    ``+Inf`` bucket is always present.  ``counts[i]`` is
    *non-cumulative* storage for the i-th bucket; the cumulative view
    required by the exposition format is computed on read.
    """

    def __init__(self, name: str, buckets, help: str = "", unit: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"buckets must be strictly increasing: {bounds}")
        self.name = name
        self.help = help
        self.unit = unit
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        v = float(value)
        if v != v:  # NaN: nothing sensible to count
            return
        self.sum += v
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le label, cumulative count)`` pairs ending at ``+Inf``."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((format_le(bound), running))
        out.append(("+Inf", running + self.counts[-1]))
        return out

    def to_dict(self) -> dict:
        """The JSON-snapshot view (cumulative, like the exposition)."""
        return {
            "buckets": {le: n for le, n in self.cumulative()},
            "sum": self.sum,
            "count": self.count,
        }


def _fmt_value(v) -> str:
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return repr(v)
    return str(v)


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def render_prometheus(counters, histograms, gauges=()) -> str:
    """Render the Prometheus/OpenMetrics text format.

    ``counters`` is an iterable of ``(name, help, samples)`` where
    ``samples`` is a list of ``(labels_dict_or_None, value)``;
    ``histograms`` an iterable of :class:`Histogram`; ``gauges`` like
    counters.  The output ends with the OpenMetrics ``# EOF`` marker
    and parses as classic Prometheus text exposition too.
    """
    lines: list[str] = []
    for name, help_text, samples in counters:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt_value(value)}")
    for name, help_text, samples in gauges:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(f"{name}{_labels(labels)} {_fmt_value(value)}")
    for h in histograms:
        lines.append(f"# HELP {h.name} {h.help}")
        lines.append(f"# TYPE {h.name} histogram")
        for le, n in h.cumulative():
            lines.append(f'{h.name}_bucket{{le="{le}"}} {n}')
        lines.append(f"{h.name}_sum {_fmt_value(float(h.sum))}")
        lines.append(f"{h.name}_count {h.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
