"""Online convergence monitors: streaming moments, split R-hat, ESS.

Everything here is *streaming*: constant memory per monitored scalar,
one :meth:`update` per draw, diagnostics readable at any point during a
run.  That is what lets ``sample_chains`` report convergence while the
chains are still moving instead of after the fact:

- :class:`Welford` -- numerically stable running mean/variance, with
  the Chan et al. pairwise ``merge`` used to combine accumulators that
  lived in different worker processes.
- :class:`SplitRhat` -- online split-half potential scale reduction.
  The classic split R-hat needs only the mean and variance of each
  half-chain, so with the total draw count known up front it streams:
  the first half of each chain feeds one Welford accumulator, the
  second half another.
- :class:`OnlineEss` -- batch-means effective sample size: ESS ~
  ``n * var(draws) / (b * var(batch means))`` with batch size ``b``.
  Coarser than the FFT autocorrelation estimator in ``eval.metrics``
  (which the final report uses) but O(1) per draw.
- :class:`DivergenceMonitor` -- running divergence / NaN-reject rates
  with a configurable warning threshold.
- :class:`ConvergenceMonitor` -- composes the above per monitored
  scalar across chains and renders incremental progress lines and a
  final report.
"""

from __future__ import annotations

import math

import numpy as np


class Welford:
    """Streaming mean/variance (Welford), mergeable across workers."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def var(self) -> float:
        """Sample variance (ddof=1)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    def merge(self, other: "Welford") -> "Welford":
        """Combine two accumulators as if one had seen both streams."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self.mean, self._m2 = other.n, other.mean, other._m2
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self.mean += delta * other.n / n
        self.n = n
        return self


class SplitRhat:
    """Online split-half R-hat for one scalar across ``n_chains`` chains."""

    def __init__(self, n_chains: int, total_draws: int):
        if n_chains < 1 or total_draws < 4:
            raise ValueError("split R-hat needs >= 1 chain and >= 4 draws")
        self.n_chains = n_chains
        self.split_at = total_draws // 2
        # Two half-chain accumulators per chain -> 2m half chains.
        self._halves = [[Welford(), Welford()] for _ in range(n_chains)]

    def update(self, chain: int, draw_index: int, value: float) -> None:
        half = 0 if draw_index < self.split_at else 1
        self._halves[chain][half].update(value)

    def rhat(self) -> float:
        """Split R-hat from the half-chain moments (NaN until every
        half-chain has at least 2 draws)."""
        halves = [w for pair in self._halves for w in pair if w.n >= 2]
        if len(halves) < 2:
            return float("nan")
        n = min(w.n for w in halves)
        means = np.array([w.mean for w in halves])
        within = float(np.mean([w.var for w in halves]))
        between = n * float(np.var(means, ddof=1))
        if within <= 0.0:
            return 1.0 if between <= 0.0 else float("inf")
        var_plus = (n - 1) / n * within + between / n
        return float(math.sqrt(var_plus / within))


class OnlineEss:
    """Batch-means ESS for one scalar chain, O(1) memory."""

    def __init__(self, batch_size: int = 25):
        self.batch_size = batch_size
        self._draws = Welford()
        self._batch_means = Welford()
        self._batch_sum = 0.0
        self._batch_n = 0

    def update(self, value: float) -> None:
        self._draws.update(value)
        self._batch_sum += value
        self._batch_n += 1
        if self._batch_n == self.batch_size:
            self._batch_means.update(self._batch_sum / self.batch_size)
            self._batch_sum = 0.0
            self._batch_n = 0

    def ess(self) -> float:
        """ESS estimate; NaN until at least two full batches exist."""
        n = self._draws.n
        if self._batch_means.n < 2:
            return float("nan")
        var = self._draws.var
        if var <= 0.0:
            return float(n)
        tau = self.batch_size * self._batch_means.var / var
        if tau <= 0.0:
            return float(n)
        return float(min(max(n / tau, 1.0), n))


class DivergenceMonitor:
    """Running divergence / NaN-reject rate for one update."""

    def __init__(self, label: str, warn_rate: float = 0.05):
        self.label = label
        self.warn_rate = warn_rate
        self.sweeps = 0
        self.divergent = 0
        self.nan_rejects = 0

    def update(self, divergent: bool = False, nan_rejects: int = 0) -> None:
        self.sweeps += 1
        self.divergent += int(bool(divergent))
        self.nan_rejects += int(nan_rejects)

    @property
    def rate(self) -> float:
        return self.divergent / self.sweeps if self.sweeps else 0.0

    @property
    def warning(self) -> str | None:
        if self.sweeps and self.rate > self.warn_rate:
            return (
                f"{self.label}: divergence rate {self.rate:.1%} exceeds "
                f"{self.warn_rate:.0%} -- decrease the step size"
            )
        return None


class ConvergenceMonitor:
    """Cross-chain online diagnostics over a multi-chain run.

    Monitors up to ``max_components`` scalar components per collected
    parameter: each gets a :class:`SplitRhat` across chains and one
    :class:`OnlineEss` per chain.

    **Feeding protocol** — every executor of
    :func:`repro.core.chains.run_chains` drives the same three calls,
    so the final monitor state is identical whichever executor ran
    (the per-chain feed order is preserved and every accumulator is
    per-(chain, scalar)):

    1. :meth:`observe_chunk` (or :meth:`observe` per draw) as each
       chain's kept draws become available — live on the sequential
       path, per posted chunk on the streaming pooled paths;
    2. :meth:`observe_stats` once per chain with its
       :class:`~repro.telemetry.stats.SampleStats` (divergence /
       acceptance accounting);
    3. :meth:`chain_done` once per chain (progress line).

    :meth:`chain_finished` composes all three for a completed chain
    (the batch, replay-at-the-end form).  :meth:`converged` is the
    early-stopping predicate the streaming engine polls.
    """

    def __init__(
        self,
        param_names: tuple[str, ...],
        n_chains: int,
        total_draws: int,
        max_components: int = 4,
        rhat_warn: float = 1.05,
        divergence_warn: float = 0.05,
        emit=None,
    ):
        self.param_names = tuple(param_names)
        self.n_chains = n_chains
        self.total_draws = total_draws
        self.max_components = max_components
        self.rhat_warn = rhat_warn
        self.divergence_warn = divergence_warn
        self.emit = emit  # callable(str) for incremental progress lines
        self._rhat: dict[str, SplitRhat] = {}
        self._ess: dict[str, list[OnlineEss]] = {}
        self._divergence: dict[str, DivergenceMonitor] = {}
        # Per-update acceptance-rate accumulators fed from the stats
        # buffers: label -> [min, max, sum, count] over finite sweeps.
        self._acceptance: dict[str, list[float]] = {}
        self._div_alerted: set[str] = set()
        self._chains_done = 0
        #: Kept draws ingested so far, per chain (drives ``converged``).
        self._draws_seen = [0] * n_chains

    # -- feeding -----------------------------------------------------------

    def _components(self, name: str, value) -> list[tuple[str, float]]:
        # Ragged values carry their scalars in .flat; np.asarray would
        # see an opaque object.
        flat_src = getattr(value, "flat", None)
        if flat_src is not None and not isinstance(value, np.ndarray):
            value = flat_src
        flat = np.ravel(np.asarray(value, dtype=np.float64))
        out = []
        for j in range(min(flat.size, self.max_components)):
            key = name if flat.size == 1 else f"{name}[{j}]"
            out.append((key, float(flat[j])))
        return out

    def observe(self, chain: int, draw_index: int, state: dict) -> None:
        """Ingest one kept draw of one chain."""
        if draw_index >= self._draws_seen[chain]:
            self._draws_seen[chain] = draw_index + 1
        for name in self.param_names:
            if name not in state:
                continue
            for key, value in self._components(name, state[name]):
                rh = self._rhat.get(key)
                if rh is None:
                    rh = self._rhat[key] = SplitRhat(
                        self.n_chains, self.total_draws
                    )
                    self._ess[key] = [OnlineEss() for _ in range(self.n_chains)]
                rh.update(chain, draw_index, value)
                self._ess[key][chain].update(value)

    def observe_stats(self, stats) -> None:
        """Ingest one chain's :class:`~repro.telemetry.stats.SampleStats`."""
        if stats is None:
            return
        for label in stats.update_labels:
            cols = stats[label]
            mon = self._divergence.get(label)
            if mon is None:
                mon = self._divergence[label] = DivergenceMonitor(
                    label, self.divergence_warn
                )
            divergent = cols.get("divergent")
            nan = cols.get("nan_rejects")
            for i in range(stats.n_sweeps):
                mon.update(
                    divergent=bool(divergent[i]) if divergent is not None else False,
                    nan_rejects=int(nan[i]) if nan is not None else 0,
                )
            rates = cols.get("accept_rate")
            if rates is not None:
                finite = rates[np.isfinite(rates)]
                if finite.size:
                    acc = self._acceptance.setdefault(
                        label, [float("inf"), float("-inf"), 0.0, 0]
                    )
                    acc[0] = min(acc[0], float(finite.min()))
                    acc[1] = max(acc[1], float(finite.max()))
                    acc[2] += float(finite.sum())
                    acc[3] += int(finite.size)
        if self.emit is not None:
            for w in self.new_divergence_warnings():
                self.emit(f"WARNING: {w}")

    def observe_chunk(
        self, chain: int, start: int, stop: int, samples: dict
    ) -> None:
        """Ingest kept draws ``start:stop`` of one chain from its draw
        storage (the streaming executors call this per posted chunk;
        dense parameters index straight into the shared-memory-backed
        arrays, nothing is copied)."""
        for d in range(start, stop):
            state = {}
            for name in self.param_names:
                vals = samples.get(name)
                if vals is not None and d < len(vals):
                    state[name] = vals[d]
            self.observe(chain, d, state)

    def chain_finished(self, chain: int, result) -> None:
        """Replay a finished chain's draws + stats into the monitors and
        emit one incremental progress line (the batch form of the
        observe_chunk -> observe_stats -> chain_done protocol)."""
        n = 0
        for name in self.param_names:
            vals = result.samples.get(name)
            if vals is not None:
                n = max(n, len(vals))
        if n:
            self.observe_chunk(chain, 0, n, result.samples)
        self.observe_stats(result.stats)
        self.chain_done()

    def chain_done(self) -> None:
        """Mark one chain complete and emit a progress line."""
        self._chains_done += 1
        if self.emit is not None:
            self.emit(self.progress_line())

    # -- reading -----------------------------------------------------------

    def worst_rhat(self) -> float:
        values = [m.rhat() for m in self._rhat.values()]
        finite = [v for v in values if math.isfinite(v)]
        return max(finite) if finite else float("nan")

    def converged(self, threshold: float, min_draws: int = 8) -> bool:
        """The early-stopping predicate: True once every chain has fed
        at least ``min_draws`` kept draws and the worst split R-hat over
        every monitored scalar is finite and at or below ``threshold``.
        Deterministic in the monitor state, so the stop decision lands
        on the same draw for the same feed whichever executor runs."""
        if not self._rhat or min(self._draws_seen) < min_draws:
            return False
        worst = self.worst_rhat()
        return math.isfinite(worst) and worst <= threshold

    def min_ess(self) -> float:
        totals = []
        for accs in self._ess.values():
            per_chain = [a.ess() for a in accs]
            finite = [v for v in per_chain if math.isfinite(v)]
            if finite:
                totals.append(sum(finite))
        return min(totals) if totals else float("nan")

    def new_divergence_warnings(self) -> list[str]:
        """Divergence warnings not yet returned by a previous call —
        each update's threshold crossing is reported exactly once, so
        callers can surface a single WARNING per run (console line,
        ``divergence.threshold`` log event) instead of repeating it on
        every poll."""
        out = []
        for label, mon in self._divergence.items():
            if label in self._div_alerted:
                continue
            w = mon.warning
            if w:
                self._div_alerted.add(label)
                out.append(w)
        return out

    def warnings(self) -> list[str]:
        out = []
        worst = self.worst_rhat()
        if math.isfinite(worst) and worst > self.rhat_warn:
            out.append(
                f"split R-hat {worst:.3f} exceeds {self.rhat_warn} -- "
                "chains have not converged"
            )
        for mon in self._divergence.values():
            w = mon.warning
            if w:
                out.append(w)
        return out

    def progress_line(self) -> str:
        worst = self.worst_rhat()
        ess = self.min_ess()
        rhat_s = f"{worst:.3f}" if math.isfinite(worst) else "n/a"
        ess_s = f"{ess:.0f}" if math.isfinite(ess) else "n/a"
        return (
            f"[monitor] chains {self._chains_done}/{self.n_chains} done: "
            f"worst split R-hat {rhat_s}, min ESS {ess_s}"
        )

    def acceptance_summary(self) -> dict[str, tuple[float, float, float]]:
        """Per-update acceptance ``(min, max, mean)`` over every finite
        sweep observed via the stats buffers (matches
        :func:`repro.telemetry.stats.acceptance_ranges` on the same
        run, so console and report agree)."""
        return {
            label: (lo, hi, total / n if n else float("nan"))
            for label, (lo, hi, total, n) in self._acceptance.items()
        }

    def report(self) -> str:
        lines = ["online convergence report:"]
        for key in sorted(self._rhat):
            r = self._rhat[key].rhat()
            per_chain = [a.ess() for a in self._ess[key]]
            finite = [v for v in per_chain if math.isfinite(v)]
            ess = sum(finite) if finite else float("nan")
            rhat_s = f"{r:.3f}" if math.isfinite(r) else "  n/a"
            ess_s = f"{ess:8.0f}" if math.isfinite(ess) else "     n/a"
            flag = "  <-- " if math.isfinite(r) and r > self.rhat_warn else ""
            lines.append(f"  {key:20s} split R-hat {rhat_s}  ESS {ess_s}{flag}")
        for mon in self._divergence.values():
            lines.append(
                f"  {mon.label:20s} divergence rate {mon.rate:.1%}, "
                f"nan-rejects {mon.nan_rejects}"
            )
        for label, (lo, hi, mean) in sorted(self.acceptance_summary().items()):
            lines.append(
                f"  {label:20s} accept mean {mean:.3f} "
                f"(range {lo:.3f}-{hi:.3f})"
            )
        warns = self.warnings()
        if warns:
            lines.extend(f"  WARNING: {w}" for w in warns)
        else:
            lines.append("  all monitors within thresholds")
        return "\n".join(lines)
