"""The compiler decision ledger: why the pipeline chose what it chose.

The compiler makes several silent, performance-critical decisions per
model: which update kind each variable gets, whether an element update
runs batched or scalar, whether HMC/NUTS gets the fused value+gradient
declaration or the separate pair, whether leapfrog integrates on the
packed flat state vector or the dict-of-arrays tree, whether a decl
emitted whole-vector NumPy or fell back to Python loops, and whether
the compile cache served the whole compilation.  Each of those now
appends a structured :class:`Decision` -- ``(decision, subject, choice,
reason, provenance)`` -- to a :class:`CompileLedger` instead of
deciding silently.

Codegen-time decisions live in the compile cache alongside the code
they describe, so a cache hit replays them; assembly-time decisions
(driver wiring, the hit/miss itself) are appended to a per-sampler
clone.  ``repro sample ... --explain`` and the HTML inference report
render the ledger; ``CompiledSampler.explain_json()`` returns it
machine-readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.provenance import Provenance


@dataclass(frozen=True)
class Decision:
    """One structured ledger entry.

    ``decision`` is the decision point (``kernel.update``,
    ``batch.elements``, ``gradient.fusion``, ``leapfrog.state``,
    ``emit.vectorize``, ``compile.cache``); ``subject`` is the update
    label or declaration name it concerns; ``choice`` is what was
    picked; ``reason`` says why in a human-readable sentence.
    """

    decision: str
    subject: str
    choice: str
    reason: str
    provenance: Provenance | None = None

    def to_dict(self) -> dict:
        return {
            "decision": self.decision,
            "subject": self.subject,
            "choice": self.choice,
            "reason": self.reason,
            "provenance": (
                self.provenance.to_dict() if self.provenance is not None else None
            ),
        }


class CompileLedger:
    """An append-only list of :class:`Decision` entries."""

    def __init__(self, entries=()):
        self.entries: list[Decision] = list(entries)

    def record(
        self,
        decision: str,
        subject: str,
        choice: str,
        reason: str,
        provenance: Provenance | None = None,
    ) -> Decision:
        entry = Decision(decision, subject, choice, reason, provenance)
        self.entries.append(entry)
        return entry

    def clone(self) -> "CompileLedger":
        """An independent copy: the cache stores the codegen-time ledger
        once, and every assembled sampler appends its own wiring entries
        to a clone."""
        return CompileLedger(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def entries_for(
        self, decision: str | None = None, subject: str | None = None
    ) -> list[Decision]:
        out = []
        for e in self.entries:
            if decision is not None and e.decision != decision:
                continue
            if subject is not None and e.subject != subject:
                continue
            out.append(e)
        return out

    def choices(self, decision: str) -> dict[str, str]:
        """``subject -> choice`` for one decision point (last one wins)."""
        return {e.subject: e.choice for e in self.entries_for(decision)}

    def to_json(self) -> list[dict]:
        return [e.to_dict() for e in self.entries]

    def render(self, source_map: dict | None = None) -> str:
        """The ledger as an aligned human-readable table."""
        if not self.entries:
            return "compiler decision ledger: empty"
        rows = []
        for e in self.entries:
            origin = (
                e.provenance.describe(source_map)
                if e.provenance is not None
                else "-"
            )
            rows.append((e.decision, e.subject, e.choice, e.reason, origin))
        widths = [
            max(len(r[i]) for r in rows) for i in range(3)
        ]
        lines = [f"compiler decision ledger ({len(rows)} decisions):"]
        for d, s, c, reason, origin in rows:
            line = (
                f"  {d:<{widths[0]}}  {s:<{widths[1]}}  {c:<{widths[2]}}  "
                f"{reason}"
            )
            if origin != "-":
                line += f"  <- {origin}"
            lines.append(line)
        return "\n".join(lines)
