"""The sweep profiler: where inside a sweep the wall-time goes.

Pipeline tracing (:mod:`repro.telemetry.trace`) shows *that* sweeps
take time; this module shows *where*: per base update of the composed
kernel, per generated declaration the drivers call, and -- through the
provenance records threaded down from the frontend -- per model
statement the user actually wrote.

Two layers of near-zero-cost timers:

- the sampler's profiled sweep loop brackets each driver's ``step``
  call with ``perf_counter`` pairs (one list-cell accumulate per
  update per sweep);
- each driver's bound compiled functions are swapped for thin timing
  wrappers (:meth:`UpdateDriver.instrument`), attributing time to the
  generated declaration actually executing.

The off path is untouched: profiling adds one branch to ``sample``'s
loop selection, exactly like stats collection, so the ≤3% off-path
overhead contract of the telemetry layer holds (enforced by
``benchmarks/bench_telemetry_overhead.py``).  Wrappers only read the
clock -- never the RNG -- so draws are bitwise identical with
profiling on or off.

Op counts reuse the backend's :func:`op_count_code` expressions
(runtime trip counts included), giving ops/s per declaration where the
expression can be evaluated against the live environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter


@dataclass
class SweepProfile:
    """The finished attribution table of one profiled ``sample`` run.

    ``updates`` and ``decls`` are lists of plain-dict rows (picklable
    across process-pool workers); ``statements`` aggregates declaration
    time by originating model statement.
    """

    n_sweeps: int
    sweep_seconds: float
    updates: list[dict] = field(default_factory=list)
    decls: list[dict] = field(default_factory=list)
    statements: list[dict] = field(default_factory=list)

    @property
    def seconds_per_sweep(self) -> float:
        """Mean measured in-sweep seconds per sweep (tuner objective)."""
        if self.n_sweeps <= 0:
            return 0.0
        return self.sweep_seconds / self.n_sweeps

    @property
    def attributed_fraction(self) -> float:
        """Fraction of measured sweep wall-time attributed to named
        updates (the acceptance-criterion number)."""
        if self.sweep_seconds <= 0.0:
            return 0.0
        return sum(r["seconds"] for r in self.updates) / self.sweep_seconds

    def to_dict(self) -> dict:
        return {
            "n_sweeps": self.n_sweeps,
            "sweep_seconds": self.sweep_seconds,
            "attributed_fraction": self.attributed_fraction,
            "updates": self.updates,
            "decls": self.decls,
            "statements": self.statements,
        }

    def table(self, source_map: dict | None = None) -> str:
        """Aligned human-readable profile table."""

        def pct(seconds: float) -> str:
            if self.sweep_seconds <= 0.0:
                return "   n/a"
            return f"{100.0 * seconds / self.sweep_seconds:5.1f}%"

        def ops_s(row: dict) -> str:
            v = row.get("ops_per_sec")
            return f"{v:9.3g}" if v else "      -  "

        lines = [
            f"sweep profile ({self.n_sweeps} sweeps, "
            f"{self.sweep_seconds:.3f} s in-sweep, "
            f"{100.0 * self.attributed_fraction:.1f}% attributed):",
            f"  {'update / decl':<34} {'calls':>9} {'wall s':>9} "
            f"{'% sweep':>7} {'ops/s':>9}",
        ]
        decl_rows = {r["name"]: [] for r in self.updates}
        for r in self.decls:
            decl_rows.setdefault(r.get("update", ""), []).append(r)
        for u in self.updates:
            lines.append(
                f"  {u['name']:<34} {u['calls']:>9} {u['seconds']:>9.4f} "
                f"{pct(u['seconds']):>7} {'':>9}"
            )
            for r in decl_rows.get(u["name"], []):
                lines.append(
                    f"    {r['name']:<32} {r['calls']:>9} "
                    f"{r['seconds']:>9.4f} {pct(r['seconds']):>7} {ops_s(r)}"
                )
        orphans = decl_rows.get("", [])
        for r in orphans:
            lines.append(
                f"  {r['name']:<34} {r['calls']:>9} {r['seconds']:>9.4f} "
                f"{pct(r['seconds']):>7} {ops_s(r)}"
            )
        if self.statements:
            lines.append("  by model statement:")
            for s in self.statements:
                origin = s["stmt"]
                if source_map and origin in source_map:
                    sl = source_map[origin]
                    origin = f"{origin} (line {sl.line}: {sl.text})"
                lines.append(
                    f"    {pct(s['seconds']):>7} {s['seconds']:>9.4f} s  "
                    f"{origin}"
                )
        return "\n".join(lines)


class SweepProfiler:
    """Live timing state for one profiled ``sample`` call.

    The sampler creates one, calls :meth:`instrument` before the sweep
    loop and :meth:`restore` after, and accumulates per-update times
    into :attr:`update_cells` from its profiled loop.  Compiled-call
    wrappers installed by the drivers accumulate into per-decl cells
    keyed by declaration name.
    """

    def __init__(self, sampler):
        self._sampler = sampler
        # Deduplicate repeated labels the same way the stats buffers do
        # (a schedule may compose two updates of the same kind on the
        # same variable).
        seen: dict[str, int] = {}
        self.update_labels: list[str] = []
        for upd in sampler.updates:
            label = upd.label
            k = seen.get(label, 0)
            seen[label] = k + 1
            self.update_labels.append(f"{label}#{k}" if k else label)
        self.update_cells = [[0, 0.0] for _ in sampler.updates]
        self._decl_cells: dict[str, list] = {}
        # decl name -> update label, captured while wrapping, so the
        # table can nest declarations under their driver.
        self._decl_owner: dict[str, str] = {}
        self._wrapping_for: str | None = None

    # -- instrumentation ---------------------------------------------------

    def wrap(self, decl_name: str, fn):
        """A timing wrapper around one bound compiled function."""
        cell = self._decl_cells.setdefault(decl_name, [0, 0.0])
        if self._wrapping_for is not None:
            self._decl_owner.setdefault(decl_name, self._wrapping_for)

        def timed(*args):
            t0 = perf_counter()
            out = fn(*args)
            dt = perf_counter() - t0
            cell[0] += 1
            cell[1] += dt
            return out

        return timed

    def instrument(self) -> None:
        for label, upd in zip(self.update_labels, self._sampler.updates):
            self._wrapping_for = label
            upd.instrument(self)
        self._wrapping_for = None

    def restore(self) -> None:
        for upd in self._sampler.updates:
            upd.restore()

    # -- op counts ---------------------------------------------------------

    def _ops_namespace(self) -> dict:
        """Evaluation scope for the backend's op-count expressions: the
        compiled module's helpers plus the mangled live environment."""
        from repro.core.backend.emitter import mangle

        ns = dict(getattr(self._sampler.module, "namespace", {}) or {})
        env = getattr(self._sampler, "_env", None) or self._sampler.base_env
        for k, v in env.items():
            ns[mangle(k)] = v
        for k, v in self._sampler.workspaces.items():
            ns[mangle(k)] = v
        return ns

    def _ops_per_call(self, decl_name: str, ns: dict) -> float | None:
        expr = (self._sampler.op_count_exprs or {}).get(decl_name)
        if not expr:
            return None
        try:
            return float(eval(expr, ns))  # noqa: S307 - compiler-generated
        except Exception:
            return None

    # -- finishing ---------------------------------------------------------

    def finish(self, sweep_seconds: float, n_sweeps: int) -> SweepProfile:
        prof = SweepProfile(n_sweeps=n_sweeps, sweep_seconds=sweep_seconds)
        provenance = self._sampler.decl_provenance or {}
        for label, upd, (calls, seconds) in zip(
            self.update_labels, self._sampler.updates, self.update_cells
        ):
            prof.updates.append(
                {
                    "name": label,
                    "calls": calls,
                    "seconds": seconds,
                    "stmt": upd.targets[0] if upd.targets else "",
                    "stmts": list(upd.targets),
                }
            )
        ns = self._ops_namespace()
        stmt_seconds: dict[str, float] = {}
        for name, (calls, seconds) in sorted(
            self._decl_cells.items(), key=lambda kv: -kv[1][1]
        ):
            ops = self._ops_per_call(name, ns)
            prov = provenance.get(name)
            stmt = prov.stmt if prov is not None else ""
            row = {
                "name": name,
                "update": self._decl_owner.get(name, ""),
                "calls": calls,
                "seconds": seconds,
                "ops_per_call": ops,
                "ops_per_sec": (
                    ops * calls / seconds if ops and seconds > 0.0 else None
                ),
                "stmt": stmt,
            }
            prof.decls.append(row)
            if stmt:
                stmt_seconds[stmt] = stmt_seconds.get(stmt, 0.0) + seconds
        prof.statements = [
            {"stmt": stmt, "seconds": seconds}
            for stmt, seconds in sorted(
                stmt_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        return prof
