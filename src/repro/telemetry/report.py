"""The inference report: one self-contained HTML (+ JSON) artifact.

Bundles everything the observability layer knows about a finished run
-- the model source with per-statement provenance, the compiler
decision ledger, the sweep profiler's attribution tables, per-update
acceptance ranges, and per-chain run metadata -- into a single file
with no external assets, so it can be archived as a CI artifact or
mailed around.

``repro report model.bug ...`` and ``repro sample --report out.html``
produce it from the CLI; :func:`write_report` is the library entry
point.  Next to every ``.html`` a machine-readable ``.json`` twin is
written with the same payload.
"""

from __future__ import annotations

import html
import json
import time


def report_data(sampler, results) -> dict:
    """The machine-readable report payload for one finished run.

    ``results`` is the list of per-chain ``SampleResult``s (a single
    ``sample`` call passes a one-element list).
    """
    from repro.telemetry.stats import acceptance_ranges

    statements = [
        {"name": sl.name, "line": sl.line, "text": sl.text}
        for sl in sampler.source_map.values()
    ]
    chains = []
    for i, r in enumerate(results):
        n_draws = len(next(iter(r.samples.values()))) if r.samples else 0
        chains.append(
            {
                "chain": i,
                "n_draws": int(n_draws),
                "wall_time": float(r.wall_time),
                "acceptance": {
                    k: (None if v != v else float(v))
                    for k, v in r.acceptance.items()
                },
            }
        )
    profiles = [r.profile.to_dict() for r in results if r.profile is not None]
    ranges = {
        label: {"min": lo, "max": hi, "mean": mean}
        for label, (lo, hi, mean) in acceptance_ranges(results).items()
    }
    adaptation = _adaptation_data(results)
    spec = getattr(sampler, "spec", None)
    return {
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "model_source": spec.source if spec is not None else "",
        "statements": statements,
        "schedule": sampler.schedule_description(),
        "compile_seconds": float(sampler.compile_seconds),
        "ledger": sampler.explain_json(),
        "chains": chains,
        "acceptance_ranges": ranges,
        "adaptation": adaptation,
        "profiles": profiles,
        "tournament": getattr(sampler, "tune_report", None),
    }


#: Longest step-size trace embedded in the report; longer warmups are
#: strided down so the artifact stays small.
_TRACE_POINTS = 256


def _adaptation_data(results) -> list[dict]:
    """Per-chain, per-update warmup adaptation summaries.

    Final state comes from ``SampleResult.adapt_state``; the per-sweep
    step-size trace rides in the stats buffers when the run collected
    them (``collect_stats=True``).
    """
    out: list[dict] = []
    for i, r in enumerate(results):
        saved = getattr(r, "adapt_state", None)
        if not saved:
            continue
        stats = getattr(r, "stats", None)
        for label, st in sorted(saved.items()):
            warmup = int(st.get("warmup", 0))
            trace: list[float] = []
            if stats is not None and label in stats.update_labels:
                cols = stats[label]
                if "step_size" in cols:
                    raw = cols["step_size"][:warmup]
                    stride = max(1, len(raw) // _TRACE_POINTS)
                    trace = [
                        float(v) for v in raw[::stride] if v == v and v > 0
                    ]
            inv_mass = st.get("inv_mass")
            step = st.get("step_size")
            out.append(
                {
                    "chain": i,
                    "update": label,
                    "warmup": warmup,
                    "target_accept": float(st.get("target_accept", 0.8)),
                    "step_size": None if step is None else float(step),
                    "windows_closed": int(st.get("window_index", 0)),
                    "n_windows": int(st.get("n_windows", 0)),
                    "inv_mass": (
                        None
                        if inv_mass is None
                        else {
                            "dim": int(len(inv_mass)),
                            "min": float(inv_mass.min()),
                            "max": float(inv_mass.max()),
                        }
                    ),
                    "step_size_trace": trace,
                }
            )
    return out


def _esc(s) -> str:
    return html.escape(str(s), quote=True)


_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 70em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; border-bottom: 1px solid #ddd; }
table { border-collapse: collapse; width: 100%; margin: 0.5em 0; }
th, td { text-align: left; padding: 0.25em 0.7em; border-bottom: 1px solid #eee; vertical-align: top; }
th { background: #f6f6f6; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; border-radius: 4px; }
.reason { color: #555; } .origin { color: #777; font-size: 0.92em; }
.muted { color: #888; }
"""


def _pct(x: float | None) -> str:
    return "-" if x is None or x != x else f"{100.0 * x:.1f}%"


def _ledger_rows(ledger: list[dict]) -> str:
    rows = []
    for e in ledger:
        prov = e.get("provenance") or {}
        origin = prov.get("stmt", "")
        rows.append(
            "<tr>"
            f"<td>{_esc(e['decision'])}</td>"
            f"<td>{_esc(e['subject'])}</td>"
            f"<td><b>{_esc(e['choice'])}</b></td>"
            f"<td class='reason'>{_esc(e['reason'])}</td>"
            f"<td class='origin'>{_esc(origin)}</td>"
            "</tr>"
        )
    return "".join(rows)


def _sparkline(values: list, width: int = 560, height: int = 64) -> str:
    """An inline SVG polyline of the (log-scale) step-size trace."""
    import math

    vals = [v for v in values if v == v and v > 0]
    if len(vals) < 2:
        return ""
    logs = [math.log(v) for v in vals]
    lo, hi = min(logs), max(logs)
    span = (hi - lo) or 1.0
    n = len(logs)
    pts = " ".join(
        f"{width * i / (n - 1):.1f},"
        f"{height - 4 - (height - 8) * (v - lo) / span:.1f}"
        for i, v in enumerate(logs)
    )
    return (
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} "
        f"{height}' role='img' aria-label='step-size trace'>"
        f"<rect width='{width}' height='{height}' fill='#f6f6f6'/>"
        f"<polyline points='{pts}' fill='none' stroke='#36c' "
        "stroke-width='1.5'/></svg>"
    )


def _fmt_step(x) -> str:
    return "-" if x is None else f"{x:.4g}"


def _adaptation_section(entries: list[dict]) -> str:
    """The warmup-adaptation summary table plus per-chain step-size
    trace sparklines."""
    if not entries:
        return ""
    rows = []
    for e in entries:
        im = e.get("inv_mass")
        mass = (
            "-" if im is None
            else f"dim {im['dim']}: {im['min']:.3g} .. {im['max']:.3g}"
        )
        rows.append(
            f"<tr><td class='num'>{e['chain']}</td>"
            f"<td>{_esc(e['update'])}</td>"
            f"<td class='num'>{e['warmup']}</td>"
            f"<td class='num'>{e['target_accept']:.2f}</td>"
            f"<td class='num'>{_fmt_step(e['step_size'])}</td>"
            f"<td class='num'>{e['windows_closed']}/{e['n_windows']}</td>"
            f"<td>{_esc(mass)}</td></tr>"
        )
    traces = []
    for e in entries:
        title = (
            "<h3>Step-size trace "
            f"(chain {e['chain']}, {_esc(e['update'])})</h3>"
        )
        trace = e.get("step_size_trace") or []
        svg = _sparkline(trace)
        if svg:
            traces.append(
                title + svg
                + f"<p class='muted'>{len(trace)} warmup points, "
                f"{_fmt_step(trace[0])} &rarr; "
                f"{_fmt_step(e['step_size'])} (log scale)</p>"
            )
        else:
            traces.append(
                title
                + "<p class='muted'>final adapted step size "
                f"{_fmt_step(e['step_size'])}; rerun with per-sweep stats "
                "collection for the full trace.</p>"
            )
    return (
        "<h2>Warmup adaptation</h2>"
        "<table><tr><th class='num'>chain</th><th>update</th>"
        "<th class='num'>warmup</th><th class='num'>target accept</th>"
        "<th class='num'>adapted step</th><th class='num'>windows</th>"
        "<th>mass diag (M&#8315;&sup1;)</th></tr>"
        + "".join(rows) + "</table>" + "".join(traces)
    )


def _fmt_gain(gain) -> str:
    return "-" if gain is None else f"{100.0 * gain:+.1f}%"


def _tournament_section(report: dict | None) -> str:
    """The autotuner's trial-sweep tournament: every candidate with its
    measured score and verdict, plus the cache outcome."""
    if not report:
        return ""
    rows = []
    for c in report.get("candidates", []):
        sps = c.get("s_per_sweep") or c.get("probe_s_per_sweep")
        ess = c.get("ess_per_s")
        style = " style='font-weight:bold'" if c["verdict"] == "winner" else ""
        rows.append(
            f"<tr{style}><td>{_esc(c['label'])}</td>"
            f"<td><code>{_esc(c['schedule'])}</code></td>"
            f"<td class='num'>{'-' if sps is None else f'{sps:.3g}'}</td>"
            f"<td class='num'>{'-' if ess is None else f'{ess:.3g}'}</td>"
            f"<td class='num'>{_fmt_gain(c.get('gain'))}</td>"
            f"<td>{_esc(c['verdict'])}</td></tr>"
        )
    winner = report.get("winner") or {}
    opts = winner.get("options") or {}
    opts_note = (
        f" with options {_esc(opts)}" if opts else ""
    )
    cache = report.get("cache", "miss")
    cache_note = (
        "cached verdict reused &mdash; trial sweeps skipped"
        if cache == "hit"
        else f"searched in {report.get('tuning_seconds', 0.0):.2f} s "
        f"({report.get('probe_sweeps')} probe + "
        f"{report.get('trial_sweeps')} trial sweeps per candidate)"
    )
    return (
        "<h2>Schedule tournament</h2>"
        f"<p>winner: <code>{_esc(winner.get('schedule', ''))}</code>"
        f"{opts_note} &middot; margin {_fmt_gain(report.get('margin'))} "
        f"&middot; {cache_note} &middot; shape key "
        f"<code>{_esc((report.get('shape_key') or '')[:16])}</code></p>"
        "<table><tr><th>candidate</th><th>schedule</th>"
        "<th class='num'>s/sweep</th><th class='num'>ESS/s</th>"
        "<th class='num'>gain</th><th>verdict</th></tr>"
        + "".join(rows) + "</table>"
    )


def _profile_section(i: int, prof: dict, many: bool) -> str:
    title = f"Sweep profile (chain {i})" if many else "Sweep profile"
    head = (
        f"<h2>{title}</h2>"
        f"<p>{prof['n_sweeps']} sweeps, {prof['sweep_seconds']:.3f} s "
        f"in-sweep, {_pct(prof['attributed_fraction'])} attributed.</p>"
        "<table><tr><th>update / decl</th><th class='num'>calls</th>"
        "<th class='num'>wall s</th><th class='num'>% sweep</th>"
        "<th class='num'>ops/s</th><th>model statement</th></tr>"
    )
    total = prof["sweep_seconds"] or float("nan")
    rows = []
    decls_by_update: dict[str, list[dict]] = {}
    for d in prof["decls"]:
        decls_by_update.setdefault(d.get("update", ""), []).append(d)
    for u in prof["updates"]:
        rows.append(
            f"<tr><td><b>{_esc(u['name'])}</b></td>"
            f"<td class='num'>{u['calls']}</td>"
            f"<td class='num'>{u['seconds']:.4f}</td>"
            f"<td class='num'>{_pct(u['seconds'] / total)}</td>"
            f"<td class='num'>-</td><td>{_esc(u.get('stmt', ''))}</td></tr>"
        )
        for d in decls_by_update.get(u["name"], []):
            ops = d.get("ops_per_sec")
            rows.append(
                f"<tr><td class='muted'>&nbsp;&nbsp;{_esc(d['name'])}</td>"
                f"<td class='num'>{d['calls']}</td>"
                f"<td class='num'>{d['seconds']:.4f}</td>"
                f"<td class='num'>{_pct(d['seconds'] / total)}</td>"
                f"<td class='num'>{'-' if not ops else f'{ops:.3g}'}</td>"
                f"<td>{_esc(d.get('stmt', ''))}</td></tr>"
            )
    stmt_rows = "".join(
        f"<tr><td>{_esc(s['stmt'])}</td>"
        f"<td class='num'>{s['seconds']:.4f}</td>"
        f"<td class='num'>{_pct(s['seconds'] / total)}</td></tr>"
        for s in prof["statements"]
    )
    stmts = (
        "<h3>By model statement</h3><table><tr><th>statement</th>"
        "<th class='num'>wall s</th><th class='num'>% sweep</th></tr>"
        f"{stmt_rows}</table>"
        if prof["statements"]
        else ""
    )
    return head + "".join(rows) + "</table>" + stmts


def render_html(data: dict) -> str:
    """The report payload as one self-contained HTML page."""
    ledger_html = ""
    if data["ledger"]:
        ledger_html = (
            "<h2>Compiler decision ledger</h2>"
            "<table><tr><th>decision</th><th>subject</th><th>choice</th>"
            "<th>reason</th><th>origin</th></tr>"
            f"{_ledger_rows(data['ledger'])}</table>"
        )
    profiles_html = "".join(
        _profile_section(i, p, many=len(data["profiles"]) > 1)
        for i, p in enumerate(data["profiles"])
    )
    adaptation_html = _adaptation_section(data.get("adaptation") or [])
    tournament_html = _tournament_section(data.get("tournament"))
    accept_html = ""
    if data["acceptance_ranges"]:
        rows = "".join(
            f"<tr><td>{_esc(label)}</td>"
            f"<td class='num'>{r['mean']:.3f}</td>"
            f"<td class='num'>{r['min']:.3f}</td>"
            f"<td class='num'>{r['max']:.3f}</td></tr>"
            for label, r in sorted(data["acceptance_ranges"].items())
        )
        accept_html = (
            "<h2>Acceptance rates (per sweep)</h2>"
            "<table><tr><th>update</th><th class='num'>mean</th>"
            f"<th class='num'>min</th><th class='num'>max</th></tr>{rows}</table>"
        )
    chain_rows = "".join(
        f"<tr><td class='num'>{c['chain']}</td>"
        f"<td class='num'>{c['n_draws']}</td>"
        f"<td class='num'>{c['wall_time']:.3f}</td><td>"
        + ", ".join(
            f"{_esc(k)} {'-' if v is None else f'{v:.3f}'}"
            for k, v in c["acceptance"].items()
        )
        + "</td></tr>"
        for c in data["chains"]
    )
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>repro inference report</title>
<style>{_STYLE}</style></head><body>
<h1>Inference report</h1>
<p class="muted">generated {_esc(data['generated_at'])} &middot;
schedule: {_esc(data['schedule'])} &middot;
compile {data['compile_seconds']:.3f} s</p>
<h2>Model</h2>
<pre>{_esc(data['model_source'])}</pre>
{tournament_html}
{ledger_html}
{accept_html}
{adaptation_html}
{profiles_html}
<h2>Chains</h2>
<table><tr><th class="num">chain</th><th class="num">draws</th>
<th class="num">wall s</th><th>acceptance (this run)</th></tr>
{chain_rows}</table>
</body></html>
"""


def write_report(path: str, sampler, results) -> dict:
    """Write the HTML report to ``path`` and its JSON twin next to it.

    Returns the report payload.  ``results`` may be a single
    ``SampleResult`` or a list of per-chain results.
    """
    if not isinstance(results, (list, tuple)):
        results = [results]
    data = report_data(sampler, list(results))
    with open(path, "w") as f:
        f.write(render_html(data))
    json_path = (
        path[: -len(".html")] + ".json" if path.endswith(".html")
        else path + ".json"
    )
    with open(json_path, "w") as f:
        json.dump(data, f, indent=2)
    return data
