"""Live streaming progress for multi-chain runs.

:class:`StreamProgress` renders a single carriage-return-refreshed
status line while a :class:`~repro.core.chains.ChainStream` is
iterated: per-chain kept draws, aggregate draws/s, the monitor's
current worst split R-hat, and the divergence/acceptance digest riding
in each chunk's ``info``.  It is TTY-only by design — the CLI falls
back to plain per-chunk lines when stderr is redirected, so logs stay
greppable.
"""

from __future__ import annotations

import sys
import time


def _fmt_rhat(value) -> str:
    if value is None:
        return "-"
    try:
        v = float(value)
    except (TypeError, ValueError):
        return "-"
    if v != v or v in (float("inf"), float("-inf")):
        return "-"
    return f"{v:.3f}"


class StreamProgress:
    """One updating status line for a streaming run.

    Feed every :class:`~repro.core.chains.ChainChunk` to
    :meth:`update`; call :meth:`close` when the stream is exhausted so
    the final line persists (followed by a newline).
    """

    def __init__(
        self,
        n_chains: int,
        total_draws: int,
        out=None,
        clock=time.monotonic,
        divergence_warn: float = 0.05,
    ):
        self.n_chains = n_chains
        self.total = total_draws
        self.out = out if out is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self.kept = [0] * n_chains
        self.divergent = 0
        self.nan_rejects = 0
        self.sweeps = 0
        self.divergence_warn = divergence_warn
        self._div_warned = False
        self._accept_last: float | None = None
        self._step_size: float | None = None
        self._phase: str | None = None
        self._warmup_sweep = [0] * n_chains
        self._warmup_total = 0
        self._width = 0

    # -- feeding -----------------------------------------------------------

    def update(self, chunk, monitor=None) -> None:
        self.kept[chunk.chain] = chunk.stop
        if chunk.info:
            accepts = []
            for key, entry in chunk.info.items():
                if key == "__phase__":
                    self._phase = entry.get("phase")
                    if entry.get("step_size") is not None:
                        self._step_size = entry["step_size"]
                    if self._phase == "warmup":
                        self._warmup_sweep[chunk.chain] = entry.get("sweep", 0)
                        self._warmup_total = entry.get("warmup", 0)
                    continue
                self.divergent += entry.get("divergent", 0)
                self.nan_rejects += entry.get("nan_rejects", 0)
                self.sweeps += entry.get("n_sweeps", 0)
                if entry.get("step_size") is not None:
                    self._step_size = entry["step_size"]
                rate = entry.get("accept_rate")
                if rate is not None and rate == rate:
                    accepts.append(rate)
            if accepts:
                self._accept_last = sum(accepts) / len(accepts)
        self._warn_divergence()
        self._render(monitor)

    def _warn_divergence(self) -> None:
        """One WARNING line per run when the running divergence rate
        first crosses the threshold (20+ sweeps so early noise doesn't
        trip it)."""
        if self._div_warned or self.sweeps < 20:
            return
        rate = self.divergent / self.sweeps
        if rate > self.divergence_warn:
            self._div_warned = True
            msg = (
                f"WARNING: divergence rate {rate:.1%} exceeds "
                f"{self.divergence_warn:.0%} -- decrease the step size"
            )
            pad = max(0, self._width - len(msg))
            self.out.write("\r" + msg + " " * pad + "\n")
            self._width = 0

    def close(self) -> None:
        self.out.write("\n")
        self.out.flush()

    # -- rendering ---------------------------------------------------------

    def _render(self, monitor) -> None:
        elapsed = max(self._clock() - self._start, 1e-9)
        done = sum(self.kept)
        rate = done / elapsed
        if self._phase == "warmup":
            chains = " ".join(
                f"c{i}:{s}/{self._warmup_total}"
                for i, s in enumerate(self._warmup_sweep)
            )
            line = f"[stream] warmup {chains}"
            if self._step_size is not None:
                line += f" | step {self._step_size:.3g}"
            pad = max(0, self._width - len(line))
            self._width = len(line)
            self.out.write("\r" + line + " " * pad)
            self.out.flush()
            return
        chains = " ".join(
            f"c{i}:{k}/{self.total}" for i, k in enumerate(self.kept)
        )
        rhat = _fmt_rhat(
            monitor.worst_rhat() if monitor is not None else None
        )
        line = (
            f"[stream] {chains} | {rate:7.1f} draws/s | R-hat {rhat}"
        )
        if self._accept_last is not None:
            line += f" | accept {self._accept_last:.2f}"
        if self._step_size is not None:
            line += f" | step {self._step_size:.3g}"
        if self.divergent:
            line += f" | divergent {self.divergent}"
        if self.nan_rejects:
            line += f" | nan-rejects {self.nan_rejects}"
        pad = max(0, self._width - len(line))
        self._width = len(line)
        self.out.write("\r" + line + " " * pad)
        self.out.flush()
