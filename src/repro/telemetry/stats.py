"""Typed per-sweep sampler statistics (the nutpie/Stan ``sample_stats``).

Every base update driver declares a tuple of :class:`StatField` entries
-- its per-sweep record schema -- and, when stats collection is on,
fills one record per sweep.  :class:`UpdateStatsBuffer` preallocates one
``(n_sweeps,)`` array per field (mirroring the zero-copy draw storage of
``core/sampler.py``) so the sweep loop does plain indexed stores, never
list appends.

:class:`SampleStats` is the per-run container handed back on
``SampleResult.stats``; :func:`stack_chain_stats` merges the per-chain
containers a multi-chain run produces into ``(n_chains, n_sweeps)``
arrays keyed nutpie-style (``"<update label>.<field>"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StatField:
    """One column of an update's per-sweep stat record."""

    name: str
    dtype: str  # numpy dtype string, e.g. "f8" / "i8"
    doc: str = ""


#: Fields every update reports, whatever its kind.
BASE_FIELDS = (
    StatField("accept_rate", "f8", "accepted/proposed over the sweep"),
    StatField("n_proposed", "i8", "proposals made this sweep"),
    StatField("nan_rejects", "i8", "proposals rejected for a NaN log-ratio"),
)


class UpdateStatsBuffer:
    """Preallocated per-sweep stat storage for one update driver."""

    def __init__(self, label: str, fields: tuple[StatField, ...], n_sweeps: int):
        self.label = label
        self.fields = fields
        self.n_sweeps = n_sweeps
        self.columns: dict[str, np.ndarray] = {
            f.name: np.zeros(n_sweeps, dtype=np.dtype(f.dtype)) for f in fields
        }

    def write(self, sweep: int, record: dict) -> None:
        """Store one sweep's record (missing fields keep their zero)."""
        for name, value in record.items():
            col = self.columns.get(name)
            if col is not None:
                col[sweep] = value

    def truncate(self, n_sweeps: int) -> None:
        """Shrink to the ``n_sweeps`` sweeps that actually ran (early
        stop / interrupt); a no-op when already that size or smaller."""
        if n_sweeps >= self.n_sweeps:
            return
        self.columns = {k: v[:n_sweeps] for k, v in self.columns.items()}
        self.n_sweeps = n_sweeps

    def __getitem__(self, field: str) -> np.ndarray:
        return self.columns[field]


class SampleStats:
    """Per-sweep statistics for every update of one sampling run.

    Indexable two ways: ``stats["Gibbs z"]`` gives one update's
    field->array dict, and :meth:`to_dict` flattens to the nutpie-style
    ``{"Gibbs z.accept_rate": array, ...}`` mapping.  Arrays cover every
    sweep (warmup and burn-in included); ``kept_slice`` selects the
    post-warmup, post-burn-in, post-thinning sweeps that correspond to
    stored draws.
    """

    def __init__(
        self,
        buffers: list[UpdateStatsBuffer],
        burn_in: int,
        thin: int,
        warmup: int = 0,
    ):
        self._buffers = {b.label: b for b in buffers}
        self.burn_in = burn_in
        self.thin = thin
        self.warmup = warmup
        self.n_sweeps = buffers[0].n_sweeps if buffers else 0

    @property
    def update_labels(self) -> tuple[str, ...]:
        return tuple(self._buffers)

    @property
    def kept_slice(self) -> slice:
        return slice(self.warmup + self.burn_in, None, self.thin)

    def __getitem__(self, label: str) -> dict[str, np.ndarray]:
        return dict(self._buffers[label].columns)

    def fields(self, label: str) -> tuple[StatField, ...]:
        return self._buffers[label].fields

    def to_dict(self) -> dict[str, np.ndarray]:
        """Flat ``"<label>.<field>" -> (n_sweeps,)`` mapping."""
        out: dict[str, np.ndarray] = {}
        for label, buf in self._buffers.items():
            for name, col in buf.columns.items():
                out[f"{label}.{name}"] = col
        return out

    # -- convenience reductions used by the CLI report ---------------------

    def divergence_rate(self, label: str) -> float:
        """Fraction of sweeps flagged divergent (0 if not an HMC-family
        update)."""
        cols = self._buffers[label].columns
        if "divergent" not in cols:
            return 0.0
        return float(np.mean(cols["divergent"] > 0))

    def summary_lines(self) -> list[str]:
        """One human-readable line per update."""
        lines = []
        for label, buf in self._buffers.items():
            cols = buf.columns
            parts = [f"accept {float(np.mean(cols['accept_rate'])):.3f}"]
            nan = int(cols["nan_rejects"].sum())
            if nan:
                parts.append(f"nan-rejects {nan}")
            if "divergent" in cols:
                parts.append(f"divergent {int((cols['divergent'] > 0).sum())}")
            if "n_leapfrog" in cols:
                parts.append(f"mean leapfrogs {float(cols['n_leapfrog'].mean()):.1f}")
            if "tree_depth" in cols:
                parts.append(f"mean depth {float(cols['tree_depth'].mean()):.1f}")
            if "expansions" in cols:
                parts.append(f"mean expansions {float(cols['expansions'].mean()):.1f}")
            if "shrinks" in cols:
                parts.append(f"mean shrinks {float(cols['shrinks'].mean()):.1f}")
            if "step_size" in cols and buf.n_sweeps and cols["step_size"][-1]:
                parts.append(f"step size {float(cols['step_size'][-1]):.4g}")
            lines.append(f"  {label}: " + ", ".join(parts))
        return lines


def allocate_stat_buffers(updates, n_sweeps: int) -> list[UpdateStatsBuffer]:
    """One preallocated buffer per update driver, labels deduplicated.

    A schedule may compose two updates of the same kind on the same
    variable; suffix duplicates with ``#k`` so every buffer keeps its
    own storage.
    """
    seen: dict[str, int] = {}
    buffers = []
    for upd in updates:
        label = upd.label
        k = seen.get(label, 0)
        seen[label] = k + 1
        if k:
            label = f"{label}#{k}"
        buffers.append(UpdateStatsBuffer(label, upd.stat_fields(), n_sweeps))
    return buffers


def chunk_stat_info(
    buffers: list[UpdateStatsBuffer], lo: int, hi: int
) -> dict[str, dict[str, float]]:
    """Per-update digest of the sweeps ``lo:hi`` of a run in flight.

    This is the ``info`` payload that rides on every streamed chunk
    (``ChainChunk.info``): acceptance over the chunk's sweeps plus
    divergence / NaN-reject counts, so streaming consumers (the
    ``--stream`` progress display, the inference service) can report
    sampler health live instead of only at the end of the run.
    """
    out: dict[str, dict[str, float]] = {}
    for buf in buffers:
        cols = buf.columns
        entry: dict[str, float] = {}
        rates = cols["accept_rate"][lo:hi]
        finite = rates[np.isfinite(rates)]
        entry["accept_rate"] = float(finite.mean()) if finite.size else float("nan")
        entry["n_proposed"] = int(cols["n_proposed"][lo:hi].sum())
        entry["nan_rejects"] = int(cols["nan_rejects"][lo:hi].sum())
        if "divergent" in cols:
            entry["divergent"] = int((cols["divergent"][lo:hi] > 0).sum())
        if "step_size" in cols and hi > lo:
            entry["step_size"] = float(cols["step_size"][hi - 1])
        entry["n_sweeps"] = int(hi - lo)
        out[buf.label] = entry
    return out


def acceptance_ranges(results) -> dict[str, tuple[float, float, float]]:
    """Per-update acceptance-rate ``(min, max, mean)`` over every sweep
    of every chain.

    Takes the ``SampleResult`` list of a (multi-chain) run made with
    ``collect_stats=True`` and reduces each update's per-sweep
    ``accept_rate`` column, skipping NaN sweeps (no proposals).  This is
    the number the console summary and the HTML report both print, so
    they agree by construction.  Empty when no chain carried stats.
    """
    per_label: dict[str, list[np.ndarray]] = {}
    for r in results:
        if r.stats is None:
            continue
        for label in r.stats.update_labels:
            col = r.stats[label]["accept_rate"]
            per_label.setdefault(label, []).append(col)
    out: dict[str, tuple[float, float, float]] = {}
    for label, cols in per_label.items():
        rates = np.concatenate(cols)
        rates = rates[np.isfinite(rates)]
        if rates.size == 0:
            out[label] = (float("nan"), float("nan"), float("nan"))
        else:
            out[label] = (
                float(rates.min()), float(rates.max()), float(rates.mean())
            )
    return out


def stack_chain_stats(results) -> dict[str, np.ndarray]:
    """Merge per-chain :class:`SampleStats` into cross-chain arrays.

    Given the ``SampleResult`` list of a multi-chain run (each worker
    records into its own buffers; nothing is shared across processes),
    returns ``{"<label>.<field>": (n_chains, n_sweeps) array}``.  Chains
    missing stats (``collect_stats=False``) yield an empty dict.
    """
    per_chain = [r.stats.to_dict() for r in results if r.stats is not None]
    if len(per_chain) != len(results) or not per_chain:
        return {}
    keys = per_chain[0].keys()
    # Early-stopped runs may leave chains with unequal sweep counts;
    # stack over the common prefix so the arrays stay rectangular.
    out = {}
    for k in keys:
        cols = [d[k] for d in per_chain]
        n = min(c.shape[0] for c in cols)
        out[k] = np.stack([c[:n] for c in cols])
    return out
