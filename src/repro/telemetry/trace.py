"""Pipeline tracing: timed spans over compiler stages and runtime phases.

A process-wide :class:`Tracer` collects *complete* events (name,
category, start, duration) plus *instant* markers (e.g. compile-cache
hits).  Tracing is off by default and every instrumentation point is a
cheap no-op until :func:`enable_tracing` flips the flag, so the hot
sampling loop pays nothing when nobody is looking.

The export format is the Chrome Trace Event JSON
(``chrome://tracing`` / Perfetto ``about:tracing`` compatible): a
top-level ``{"traceEvents": [...]}`` object whose events carry
microsecond timestamps.  ``python -m repro sample ... --trace out.json``
wires the whole pipeline -- density extraction, kernel selection,
codegen, exec, then init/sweep/collect -- into one such file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One complete ("X") or instant ("i") Chrome trace event."""

    name: str
    cat: str
    ts: float  # perf_counter seconds at start
    dur: float  # seconds (0 for instants)
    phase: str = "X"
    tid: int = 0
    args: dict = field(default_factory=dict)
    #: Originating process id; 0 means "this process" and is stamped at
    #: export.  Non-zero values come from worker processes whose events
    #: were adopted into the parent tracer.
    pid: int = 0


class Tracer:
    """Collects trace events; bounded, thread-safe, off by default."""

    def __init__(self, max_events: int = 200_000):
        self.max_events = max_events
        self.enabled = False
        self.dropped = 0
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()

    # -- control -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._events = []
            self.dropped = 0

    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    # -- recording ---------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def add_complete(
        self, name: str, cat: str, ts: float, dur: float, **args
    ) -> None:
        """Record a span from raw ``time.perf_counter`` readings.

        Used for bulk emission (e.g. per-sweep spans reconstructed from
        the sampler's timing arrays) where a context manager per event
        would distort what is being measured.
        """
        if not self.enabled:
            return
        self._append(
            TraceEvent(name, cat, ts, dur, "X", threading.get_ident(), args)
        )

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        """Record a zero-duration marker (cache hit/miss, warning, ...)."""
        if not self.enabled:
            return
        self._append(
            TraceEvent(
                name, cat, time.perf_counter(), 0.0, "i",
                threading.get_ident(), args,
            )
        )

    @contextmanager
    def span(self, name: str, cat: str = "repro", **args):
        """Time a ``with`` block as one complete event."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_complete(name, cat, t0, time.perf_counter() - t0, **args)

    # -- cross-process merging --------------------------------------------

    def export_events(self) -> list[TraceEvent]:
        """The collected events, pid-stamped for shipping to a parent
        process (worker side of the multi-chain trace merge)."""
        pid = os.getpid()
        out = []
        for e in self.events:
            if e.pid == 0:
                e = TraceEvent(
                    e.name, e.cat, e.ts, e.dur, e.phase, e.tid, e.args, pid
                )
            out.append(e)
        return out

    def drain_events(self) -> list[TraceEvent]:
        """Atomically take (and clear) the collected events, pid-stamped.

        The per-chunk variant of :meth:`export_events`: pool workers
        drain after every chunk so trace events stream to the parent
        incrementally instead of piling up until the chain ends, and a
        later drain never re-ships what an earlier one already sent.
        """
        with self._lock:
            events, self._events = self._events, []
        pid = os.getpid()
        out = []
        for e in events:
            if e.pid == 0:
                e = TraceEvent(
                    e.name, e.cat, e.ts, e.dur, e.phase, e.tid, e.args, pid
                )
            out.append(e)
        return out

    def adopt(self, events: list[TraceEvent]) -> None:
        """Merge events shipped from a worker process into this tracer.

        Adopted events keep their own ``pid``/``tid``, so the exported
        trace shows each worker as a distinct process row.
        """
        for e in events:
            self._append(e)

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The collected events as a Chrome Trace Event JSON object."""
        pid = os.getpid()
        out = []
        for e in self.events:
            rec = {
                "name": e.name,
                "cat": e.cat,
                "ph": e.phase,
                "ts": e.ts * 1e6,
                "pid": e.pid or pid,
                "tid": e.tid,
            }
            if e.phase == "X":
                rec["dur"] = e.dur * 1e6
            if e.phase == "i":
                rec["s"] = "t"  # thread-scoped instant
            if e.args:
                rec["args"] = e.args
            out.append(rec)
        meta = {"dropped_events": self.dropped}
        return {"traceEvents": out, "displayTimeUnit": "ms", "otherData": meta}

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f)


#: The process-wide tracer every instrumentation point reports to.
_tracer = Tracer()


def get_tracer() -> Tracer:
    return _tracer


def tracing_enabled() -> bool:
    return _tracer.enabled


def enable_tracing(reset: bool = True) -> Tracer:
    """Turn on span collection (optionally dropping prior events)."""
    if reset:
        _tracer.reset()
    _tracer.enable()
    return _tracer


def disable_tracing() -> None:
    _tracer.disable()


def span(name: str, cat: str = "repro", **args):
    """``with span("kernel.select", cat="compile"): ...``"""
    return _tracer.span(name, cat, **args)


def instant(name: str, cat: str = "repro", **args) -> None:
    _tracer.instant(name, cat, **args)


def write_trace(path: str) -> None:
    """Dump everything collected so far as a Chrome trace JSON file."""
    _tracer.write(path)
