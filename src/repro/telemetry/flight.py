"""Per-request flight recorder: a bounded ring of sweep digests.

While a request samples, the service feeds every streamed
:class:`~repro.core.chains.ChainChunk` into a :class:`FlightRecorder`:
the chunk's per-update stat digest (acceptance, divergences,
NaN rejects, step size), the warmup phase, and the monitor's worst
split R-hat at that point, per chain, in a ``deque(maxlen=N)``.  The
memory cost is a constant independent of request size — exactly an
aircraft flight recorder: always on, overwritten in flight, read only
after something went wrong.

A recorder is dumped to a post-mortem JSON artifact
(``<request>.flight.json``, next to the request's HTML report) when
the request errors, exceeds the divergence-rate threshold, or is
killed by its deadline; the artifact embeds the event log's recent
events for the same correlation id, so one file holds both the last N
sweep digests and the cross-process event trail.
"""

from __future__ import annotations

import json
import time
import traceback as _traceback
from collections import deque

#: Ring capacity (chunks, across chains) when the caller does not choose.
DEFAULT_CAPACITY = 64

#: Default divergence-rate warning/dump threshold (matches
#: :class:`~repro.telemetry.monitors.DivergenceMonitor`).
DEFAULT_DIVERGENCE_WARN = 0.05

#: Sweeps observed before the divergence rate is considered meaningful.
MIN_DIVERGENCE_SWEEPS = 20


class FlightRecorder:
    """Bounded ring of per-chunk stat digests for one request.

    :meth:`record_chunk` also accumulates the request's running
    divergence rate (divergent sweeps / total sweeps across all
    updates and chains) and returns ``True`` exactly once — when the
    rate first crosses ``divergence_warn`` with at least
    :data:`MIN_DIVERGENCE_SWEEPS` sweeps observed — so the caller can
    emit its single per-request WARNING.
    """

    def __init__(
        self,
        request_id: str,
        capacity: int = DEFAULT_CAPACITY,
        divergence_warn: float = DEFAULT_DIVERGENCE_WARN,
    ):
        self.request_id = request_id
        self.capacity = capacity
        self.divergence_warn = divergence_warn
        self.created = time.time()
        self.sweeps = 0
        self.divergent = 0
        self.exceeded = False
        self._entries: deque[dict] = deque(maxlen=capacity)

    # -- feeding -----------------------------------------------------------

    def record_chunk(self, chunk, worst_rhat=None) -> bool:
        """Ingest one streamed chunk; returns ``True`` iff this chunk
        pushed the divergence rate over the threshold for the first
        time."""
        entry = {
            "ts": round(time.time(), 6),
            "chain": chunk.chain,
            "start": chunk.start,
            "stop": chunk.stop,
            "phase": "sampling",
            "step_size": None,
            "worst_rhat": _finite(worst_rhat),
            "stats": {},
        }
        info = chunk.info or {}
        for label, digest in info.items():
            if label == "__phase__":
                entry["phase"] = digest.get("phase") or "sampling"
                if digest.get("step_size") is not None:
                    entry["step_size"] = float(digest["step_size"])
                continue
            stats = {
                k: _plain(v)
                for k, v in digest.items()
                if k in (
                    "accept_rate", "n_proposed", "nan_rejects",
                    "divergent", "step_size", "n_sweeps",
                )
            }
            entry["stats"][label] = stats
            if stats.get("step_size") is not None:
                entry["step_size"] = stats["step_size"]
            self.divergent += int(stats.get("divergent") or 0)
            self.sweeps += int(stats.get("n_sweeps") or 0)
        self._entries.append(entry)
        if (
            not self.exceeded
            and self.sweeps >= MIN_DIVERGENCE_SWEEPS
            and self.divergence_rate > self.divergence_warn
        ):
            self.exceeded = True
            return True
        return False

    # -- reading -----------------------------------------------------------

    @property
    def divergence_rate(self) -> float:
        return self.divergent / self.sweeps if self.sweeps else 0.0

    def snapshot(self) -> dict:
        """JSON-ready view of the ring and the divergence accounting."""
        return {
            "request_id": self.request_id,
            "created": round(self.created, 6),
            "capacity": self.capacity,
            "entries": list(self._entries),
            "divergence": {
                "rate": self.divergence_rate,
                "divergent_sweeps": self.divergent,
                "sweeps": self.sweeps,
                "threshold": self.divergence_warn,
                "exceeded": self.exceeded,
            },
        }

    def dump(self, path: str, reason: str, error=None, events=None) -> dict:
        """Write the post-mortem artifact and return its document.

        ``reason`` is one of ``"error"`` / ``"divergence"`` /
        ``"deadline"``; ``error`` (an exception) adds class, message
        and traceback; ``events`` (a list of
        :class:`~repro.telemetry.obslog.ObsEvent`) embeds the request's
        cross-process event trail.
        """
        doc = self.snapshot()
        doc["reason"] = reason
        doc["dumped"] = round(time.time(), 6)
        if error is not None:
            doc["error"] = {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": "".join(
                    _traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
            }
        if events is not None:
            doc["events"] = [e.to_json() for e in events]
        with open(path, "w") as f:
            json.dump(doc, f, indent=2, default=_json_fallback)
        return doc


def _finite(v):
    if v is None:
        return None
    try:
        v = float(v)
    except (TypeError, ValueError):
        return None
    return v if v == v and v not in (float("inf"), float("-inf")) else None


def _plain(v):
    import numpy as np

    if isinstance(v, np.generic):
        return v.item()
    if isinstance(v, float) and v != v:
        return None  # NaN is not JSON
    return v


def _json_fallback(obj):
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return repr(obj)
