"""Request-level service metrics.

The inference service records one entry per handled request: queue
wait, compile cache hit/miss, sampling throughput, how the request
stopped.  :class:`ServiceMetrics` aggregates them behind a lock (the
server handles requests on a thread pool) and renders a snapshot for
the ``/v1/metrics`` endpoint.
"""

from __future__ import annotations

import threading
from collections import deque


class ServiceMetrics:
    """Thread-safe rolling aggregates over handled requests."""

    def __init__(self, recent: int = 32):
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=recent)
        self.requests = 0
        self.errors = 0
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self.tuned_requests = 0
        self.tuning_cache_hits = 0
        self.tuning_cache_misses = 0
        self.deadline_stops = 0
        self.draw_budget_stops = 0
        self.converged_stops = 0
        self.checkpoints_saved = 0
        self.resumed_requests = 0
        self.total_queue_wait_s = 0.0
        self.total_sampling_s = 0.0
        self.total_sweeps = 0
        self.total_draws = 0

    def record(
        self,
        *,
        request_id: str | None,
        queue_wait_s: float,
        compile_s: float,
        sampling_s: float,
        cache_hit: bool,
        sweeps: int,
        draws: int,
        stop_reason: str | None,
        resumed: bool,
        checkpointed: bool,
        tuned: bool = False,
        tune_cache_hit: bool | None = None,
    ) -> None:
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.compile_cache_hits += 1
            else:
                self.compile_cache_misses += 1
            if tuned:
                self.tuned_requests += 1
                if tune_cache_hit:
                    self.tuning_cache_hits += 1
                else:
                    self.tuning_cache_misses += 1
            if stop_reason == "deadline":
                self.deadline_stops += 1
            elif stop_reason == "draw_budget":
                self.draw_budget_stops += 1
            elif stop_reason == "converged":
                self.converged_stops += 1
            if resumed:
                self.resumed_requests += 1
            if checkpointed:
                self.checkpoints_saved += 1
            self.total_queue_wait_s += queue_wait_s
            self.total_sampling_s += sampling_s
            self.total_sweeps += sweeps
            self.total_draws += draws
            self._recent.append(
                {
                    "request_id": request_id,
                    "queue_wait_s": round(queue_wait_s, 6),
                    "compile_s": round(compile_s, 6),
                    "sampling_s": round(sampling_s, 6),
                    "cache_hit": cache_hit,
                    "sweeps": sweeps,
                    "draws": draws,
                    "stop_reason": stop_reason,
                    "resumed": resumed,
                    "checkpointed": checkpointed,
                    "tuned": tuned,
                    "tune_cache_hit": tune_cache_hit,
                }
            )

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def snapshot(self) -> dict:
        """A JSON-ready view of the aggregates plus the recent ring."""
        with self._lock:
            n = self.requests
            sampling = self.total_sampling_s
            return {
                "requests": n,
                "errors": self.errors,
                "compile_cache": {
                    "hits": self.compile_cache_hits,
                    "misses": self.compile_cache_misses,
                },
                "tuning_cache": {
                    "requests": self.tuned_requests,
                    "hits": self.tuning_cache_hits,
                    "misses": self.tuning_cache_misses,
                },
                "stops": {
                    "deadline": self.deadline_stops,
                    "draw_budget": self.draw_budget_stops,
                    "converged": self.converged_stops,
                },
                "checkpoints_saved": self.checkpoints_saved,
                "resumed_requests": self.resumed_requests,
                "mean_queue_wait_s": (
                    self.total_queue_wait_s / n if n else 0.0
                ),
                "total_sampling_s": sampling,
                "total_sweeps": self.total_sweeps,
                "total_draws": self.total_draws,
                "sweeps_per_s": (
                    self.total_sweeps / sampling if sampling > 0 else 0.0
                ),
                "recent": list(self._recent),
            }
