"""Request-level service metrics.

The inference service records one entry per handled request: queue
wait, compile cache hit/miss, sampling throughput, how the request
stopped.  :class:`ServiceMetrics` aggregates them behind a lock (the
server handles requests on a thread pool) and renders two views for
the ``/v1/metrics`` endpoint: the JSON snapshot (:meth:`snapshot`) and
the Prometheus/OpenMetrics text exposition (:meth:`prometheus`), both
backed by the same counters and fixed-bucket
:class:`~repro.telemetry.metrics.Histogram` instances so they can
never disagree.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.telemetry.metrics import (
    DIVERGENCE_RATE_BUCKETS,
    DRAWS_BUCKETS,
    LATENCY_BUCKETS,
    QUEUE_WAIT_BUCKETS,
    SWEEPS_PER_S_BUCKETS,
    Histogram,
    render_prometheus,
)

#: Errors kept in the ``recent_errors`` ring of the JSON snapshot.
RECENT_ERRORS = 16


class ServiceMetrics:
    """Thread-safe rolling aggregates over handled requests."""

    def __init__(self, recent: int = 32, recent_errors: int = RECENT_ERRORS):
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=recent)
        self._errors: deque = deque(maxlen=recent_errors)
        self.requests = 0
        self.errors = 0
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        self.tuned_requests = 0
        self.tuning_cache_hits = 0
        self.tuning_cache_misses = 0
        self.deadline_stops = 0
        self.draw_budget_stops = 0
        self.converged_stops = 0
        self.checkpoints_saved = 0
        self.resumed_requests = 0
        self.flight_dumps = 0
        self.total_queue_wait_s = 0.0
        self.total_sampling_s = 0.0
        self.total_sweeps = 0
        self.total_draws = 0
        self.hist_latency = Histogram(
            "repro_request_latency_seconds", LATENCY_BUCKETS,
            "End-to-end request latency (compile + sampling + summary)",
        )
        self.hist_queue_wait = Histogram(
            "repro_request_queue_wait_seconds", QUEUE_WAIT_BUCKETS,
            "Wait between request arrival and handling start",
        )
        self.hist_sweeps_per_s = Histogram(
            "repro_request_sweeps_per_second", SWEEPS_PER_S_BUCKETS,
            "Per-request sampling throughput in sweeps/s",
        )
        self.hist_draws = Histogram(
            "repro_request_draws", DRAWS_BUCKETS,
            "Kept draws per request (all chains)",
        )
        self.hist_divergence = Histogram(
            "repro_request_divergence_rate", DIVERGENCE_RATE_BUCKETS,
            "Divergent-sweep fraction per request",
        )

    @property
    def histograms(self) -> tuple[Histogram, ...]:
        return (
            self.hist_latency,
            self.hist_queue_wait,
            self.hist_sweeps_per_s,
            self.hist_draws,
            self.hist_divergence,
        )

    def record(
        self,
        *,
        request_id: str | None,
        queue_wait_s: float,
        compile_s: float,
        sampling_s: float,
        cache_hit: bool,
        sweeps: int,
        draws: int,
        stop_reason: str | None,
        resumed: bool,
        checkpointed: bool,
        tuned: bool = False,
        tune_cache_hit: bool | None = None,
        total_s: float | None = None,
        divergence_rate: float | None = None,
    ) -> None:
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.compile_cache_hits += 1
            else:
                self.compile_cache_misses += 1
            if tuned:
                self.tuned_requests += 1
                if tune_cache_hit:
                    self.tuning_cache_hits += 1
                else:
                    self.tuning_cache_misses += 1
            if stop_reason == "deadline":
                self.deadline_stops += 1
            elif stop_reason == "draw_budget":
                self.draw_budget_stops += 1
            elif stop_reason == "converged":
                self.converged_stops += 1
            if resumed:
                self.resumed_requests += 1
            if checkpointed:
                self.checkpoints_saved += 1
            self.total_queue_wait_s += queue_wait_s
            self.total_sampling_s += sampling_s
            self.total_sweeps += sweeps
            self.total_draws += draws
            self.hist_latency.observe(
                total_s if total_s is not None
                else compile_s + sampling_s + queue_wait_s
            )
            self.hist_queue_wait.observe(queue_wait_s)
            if sampling_s > 0 and sweeps > 0:
                self.hist_sweeps_per_s.observe(sweeps / sampling_s)
            self.hist_draws.observe(draws)
            if divergence_rate is not None:
                self.hist_divergence.observe(divergence_rate)
            self._recent.append(
                {
                    "request_id": request_id,
                    "queue_wait_s": round(queue_wait_s, 6),
                    "compile_s": round(compile_s, 6),
                    "sampling_s": round(sampling_s, 6),
                    "cache_hit": cache_hit,
                    "sweeps": sweeps,
                    "draws": draws,
                    "stop_reason": stop_reason,
                    "resumed": resumed,
                    "checkpointed": checkpointed,
                    "tuned": tuned,
                    "tune_cache_hit": tune_cache_hit,
                }
            )

    def record_error(self, error=None, request_id: str | None = None) -> None:
        """Count one failed request, keeping its context (error class,
        message, request id, timestamp) in the bounded ring surfaced as
        ``recent_errors`` in the snapshot."""
        with self._lock:
            self.errors += 1
            self._errors.append(
                {
                    "time": round(time.time(), 6),
                    "request_id": request_id,
                    "error": type(error).__name__ if error is not None else None,
                    "message": str(error) if error is not None else None,
                }
            )

    def record_flight_dump(self) -> None:
        with self._lock:
            self.flight_dumps += 1

    def snapshot(self) -> dict:
        """A JSON-ready view of the aggregates plus the recent rings."""
        with self._lock:
            n = self.requests
            sampling = self.total_sampling_s
            return {
                "requests": n,
                "errors": self.errors,
                "compile_cache": {
                    "hits": self.compile_cache_hits,
                    "misses": self.compile_cache_misses,
                },
                "tuning_cache": {
                    "requests": self.tuned_requests,
                    "hits": self.tuning_cache_hits,
                    "misses": self.tuning_cache_misses,
                },
                "stops": {
                    "deadline": self.deadline_stops,
                    "draw_budget": self.draw_budget_stops,
                    "converged": self.converged_stops,
                },
                "checkpoints_saved": self.checkpoints_saved,
                "resumed_requests": self.resumed_requests,
                "flight_dumps": self.flight_dumps,
                "mean_queue_wait_s": (
                    self.total_queue_wait_s / n if n else 0.0
                ),
                "total_sampling_s": sampling,
                "total_sweeps": self.total_sweeps,
                "total_draws": self.total_draws,
                "sweeps_per_s": (
                    self.total_sweeps / sampling if sampling > 0 else 0.0
                ),
                "recent": list(self._recent),
                "recent_errors": list(self._errors),
                "histograms": {
                    h.name: h.to_dict() for h in self.histograms
                },
            }

    def prometheus(self, in_flight: int | None = None) -> str:
        """The Prometheus/OpenMetrics text exposition of the same
        counters and histograms the JSON snapshot reports."""
        with self._lock:
            counters = [
                (
                    "repro_requests_total",
                    "Requests handled to completion",
                    [(None, self.requests)],
                ),
                (
                    "repro_request_errors_total",
                    "Requests that failed with an error",
                    [(None, self.errors)],
                ),
                (
                    "repro_compile_cache_total",
                    "Compile cache hits and misses",
                    [
                        ({"result": "hit"}, self.compile_cache_hits),
                        ({"result": "miss"}, self.compile_cache_misses),
                    ],
                ),
                (
                    "repro_tuning_cache_total",
                    "Schedule-tuning verdict cache hits and misses",
                    [
                        ({"result": "hit"}, self.tuning_cache_hits),
                        ({"result": "miss"}, self.tuning_cache_misses),
                    ],
                ),
                (
                    "repro_request_stops_total",
                    "Requests stopped by each budget mechanism",
                    [
                        ({"reason": "deadline"}, self.deadline_stops),
                        ({"reason": "draw_budget"}, self.draw_budget_stops),
                        ({"reason": "converged"}, self.converged_stops),
                    ],
                ),
                (
                    "repro_checkpoints_saved_total",
                    "Request checkpoints written",
                    [(None, self.checkpoints_saved)],
                ),
                (
                    "repro_resumed_requests_total",
                    "Requests resumed from a checkpoint",
                    [(None, self.resumed_requests)],
                ),
                (
                    "repro_flight_dumps_total",
                    "Flight-recorder post-mortem artifacts written",
                    [(None, self.flight_dumps)],
                ),
                (
                    "repro_sweeps_total",
                    "MCMC sweeps executed across all requests",
                    [(None, self.total_sweeps)],
                ),
                (
                    "repro_draws_total",
                    "Kept draws across all requests",
                    [(None, self.total_draws)],
                ),
            ]
            gauges = []
            if in_flight is not None:
                gauges.append(
                    (
                        "repro_in_flight_requests",
                        "Requests currently being handled",
                        [(None, in_flight)],
                    )
                )
            return render_prometheus(counters, self.histograms, gauges)
