"""Structured JSON-lines event log with request correlation ids.

The serving stack's operational log: one JSON object per line, each
carrying a leveled, dotted event name (``request.accepted``,
``chunk.emitted``, ``worker.died`` ...), the originating process id,
and — when the event happened on behalf of a request — the request's
correlation id (``rid``).  Because warm-pool workers capture their
events in memory and ship them to the parent over the existing chunk
drain path (the same scheme :class:`~repro.telemetry.trace.Tracer`
uses for trace spans), one ``grep`` for a rid reconstructs a request
end to end across every process that touched it.

Like the tracer, logging is **off by default** and every emission
point is one attribute check until :func:`configure_event_log` arms a
sink, so the sampling hot path pays nothing when nobody is operating
the service.

Three modes of one process-wide :class:`EventLog`:

- **disabled** (the default): :meth:`EventLog.log` returns after one
  ``enabled`` check.
- **sink mode** (the serving parent): events are serialized to the
  JSON-lines file under a lock and mirrored into a bounded in-memory
  ring, which post-mortem artifacts query by rid
  (:meth:`EventLog.recent`).
- **capture mode** (pool workers): events accumulate in a bounded
  buffer; :meth:`EventLog.drain_capture` takes them for shipping and
  the parent's :meth:`EventLog.adopt` writes them out, preserving the
  worker's pid and timestamps.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Numeric severities, syslog-style ordering.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Events kept in the in-memory ring for post-mortem artifacts.
DEFAULT_RING = 1024

#: Cap on a worker's capture buffer between drains.
CAPTURE_CAP = 10_000

_rid_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obslog_rid", default=None
)


def current_rid() -> str | None:
    """The correlation id of the request this thread is serving."""
    return _rid_var.get()


@contextmanager
def request_context(rid: str | None):
    """Scope a correlation id: every event logged inside the block
    (without an explicit ``rid``) carries it."""
    token = _rid_var.set(rid)
    try:
        yield
    finally:
        _rid_var.reset(token)


def _json_default(obj):
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return repr(obj)


@dataclass
class ObsEvent:
    """One structured log event."""

    event: str
    level: str
    ts: float  # epoch seconds
    rid: str | None
    pid: int
    fields: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        rec = {
            "ts": round(self.ts, 6),
            "level": self.level,
            "event": self.event,
            "rid": self.rid,
            "pid": self.pid,
        }
        rec.update(self.fields)
        return rec

    def line(self) -> str:
        return json.dumps(
            self.to_json(), default=_json_default, separators=(",", ":")
        )


class EventLog:
    """Leveled structured event log; bounded, thread-safe, off by
    default (see the module docstring for the three modes)."""

    def __init__(self, ring: int = DEFAULT_RING):
        self.enabled = False
        self.level = LEVELS["info"]
        self.level_name = "info"
        self.dropped = 0
        self._sink = None
        self._sink_path: str | None = None
        self._owns_sink = False
        self._capturing = False
        self._capture: list[ObsEvent] = []
        self._ring: deque[ObsEvent] = deque(maxlen=ring)
        self._lock = threading.Lock()

    # -- control -----------------------------------------------------------

    def configure(self, path=None, stream=None, level: str = "info") -> None:
        """Arm the log: write JSON lines to ``path`` (append mode) or an
        open ``stream``, keeping events at or above ``level``."""
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; use one of {', '.join(LEVELS)}"
            )
        with self._lock:
            self._close_sink_locked()
            if path is not None:
                self._sink = open(path, "a", buffering=1)
                self._sink_path = path
                self._owns_sink = True
            elif stream is not None:
                self._sink = stream
                self._sink_path = None
                self._owns_sink = False
            self.level = LEVELS[level]
            self.level_name = level
            self.enabled = self._sink is not None or self._capturing

    def close(self) -> None:
        with self._lock:
            self._close_sink_locked()
            self.enabled = self._capturing

    def _close_sink_locked(self) -> None:
        if self._sink is not None and self._owns_sink:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None
        self._sink_path = None
        self._owns_sink = False

    def reset_after_fork(self) -> None:
        """Drop state a forked worker inherited from the parent.

        The child must not write to the parent's sink (interleaved
        partial lines) nor report the parent's ring as its own.  The
        inherited file object is *abandoned*, not closed: closing would
        flush nothing (line-buffered writes leave no pending bytes) but
        the explicit drop keeps the intent obvious.
        """
        self._sink = None
        self._sink_path = None
        self._owns_sink = False
        self._capturing = False
        self._capture = []
        self._ring.clear()
        self.enabled = False
        self._lock = threading.Lock()  # never carry a held parent lock

    # -- worker capture ----------------------------------------------------

    def begin_capture(self, level: str = "info") -> None:
        """Switch to in-memory capture (pool worker side)."""
        with self._lock:
            self._capture = []
            self._capturing = True
            self.level = LEVELS.get(level, LEVELS["info"])
            self.level_name = level
            self.enabled = True

    @property
    def capturing(self) -> bool:
        return self._capturing

    def drain_capture(self) -> list[ObsEvent]:
        """Atomically take (and clear) the captured events for shipping."""
        with self._lock:
            events, self._capture = self._capture, []
        return events

    def end_capture(self) -> None:
        with self._lock:
            self._capturing = False
            self._capture = []
            self.enabled = self._sink is not None

    def adopt(self, events) -> None:
        """Write events shipped from a worker process, preserving their
        pid/timestamp/rid (parent side of the chunk drain path)."""
        if not events:
            return
        with self._lock:
            for e in events:
                self._write_locked(e)

    # -- recording ---------------------------------------------------------

    def log(self, event: str, level: str = "info", rid=None, **fields) -> None:
        """Record one event.  ``rid`` defaults to the ambient request
        context (:func:`request_context`); pass it explicitly from code
        running outside the request's thread."""
        if not self.enabled:
            return
        severity = LEVELS.get(level, LEVELS["info"])
        if severity < self.level:
            return
        if rid is None:
            rid = _rid_var.get()
        e = ObsEvent(event, level, time.time(), rid, os.getpid(), fields)
        with self._lock:
            if self._capturing:
                if len(self._capture) >= CAPTURE_CAP:
                    self.dropped += 1
                    return
                self._capture.append(e)
            else:
                self._write_locked(e)

    def _write_locked(self, e: ObsEvent) -> None:
        self._ring.append(e)
        if self._sink is not None:
            try:
                self._sink.write(e.line() + "\n")
            except (OSError, ValueError):
                self.dropped += 1

    # -- reading -----------------------------------------------------------

    def recent(self, rid: str | None = None) -> list[ObsEvent]:
        """The ring's events, optionally filtered to one correlation id
        (post-mortem artifacts embed these)."""
        with self._lock:
            events = list(self._ring)
        if rid is None:
            return events
        return [e for e in events if e.rid == rid]

    @property
    def sink_path(self) -> str | None:
        return self._sink_path


#: The process-wide event log every emission point reports to.
_log = EventLog()


def get_event_log() -> EventLog:
    return _log


def configure_event_log(path=None, stream=None, level: str = "info") -> EventLog:
    """Arm the process-wide log (the serve/CLI entry points call this)."""
    _log.configure(path=path, stream=stream, level=level)
    return _log


def log_event(event: str, level: str = "info", rid=None, **fields) -> None:
    """``log_event("request.accepted", rid="job-1", chains=2)``"""
    _log.log(event, level=level, rid=rid, **fields)
