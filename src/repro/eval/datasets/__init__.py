"""Synthetic datasets with the shapes of the paper's evaluation data.

The paper evaluates on UCI datasets (German Credit, Adult, Kos, Nips).
Offline, we generate deterministic synthetic equivalents whose *shapes*
match -- feature counts, class balance, vocabulary sizes, token counts
-- since those shapes, not the particular values, drive the performance
trends being reproduced (see DESIGN.md, substitutions table).
"""

from repro.eval.datasets.classification import adult_like, german_credit_like
from repro.eval.datasets.clusters import hgmm_synthetic
from repro.eval.datasets.corpus import kos_like, nips_like, synthetic_corpus

__all__ = [
    "adult_like",
    "german_credit_like",
    "hgmm_synthetic",
    "kos_like",
    "nips_like",
    "synthetic_corpus",
]
