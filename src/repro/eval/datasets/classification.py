"""Binary-classification datasets shaped like German Credit and Adult."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassificationData:
    x: np.ndarray  # (N, D) standardised features
    y: np.ndarray  # (N,) 0/1 labels
    true_theta: np.ndarray
    true_bias: float

    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def d(self) -> int:
        return self.x.shape[1]


def _logistic_dataset(n: int, d: int, seed: int, sparsity: float = 0.5) -> ClassificationData:
    rng = np.random.default_rng(seed)
    # A mix of continuous and binarised features, standardised, as the
    # preprocessed UCI datasets would be.
    cont = rng.normal(size=(n, d))
    binary_mask = rng.uniform(size=d) < 0.4
    cont[:, binary_mask] = (cont[:, binary_mask] > 0).astype(np.float64)
    x = (cont - cont.mean(axis=0)) / (cont.std(axis=0) + 1e-12)
    theta = rng.normal(size=d)
    theta[rng.uniform(size=d) < sparsity] = 0.0
    bias = float(rng.normal(scale=0.5))
    p = 1.0 / (1.0 + np.exp(-(x @ theta + bias)))
    y = (rng.uniform(size=n) < p).astype(np.int64)
    return ClassificationData(x=x, y=y, true_theta=theta, true_bias=bias)


def german_credit_like(n: int = 1000, d: int = 24, seed: int = 101) -> ClassificationData:
    """The German Credit shape: ~1000 points, 24 predictors (paper: "the
    small dataset size (roughly 1000 points) and the low dimensionality
    of the parameter space (26 parameters)")."""
    return _logistic_dataset(n, d, seed)


def adult_like(n: int = 50_000, d: int = 14, seed: int = 202) -> ClassificationData:
    """The Adult Income shape: ~50000 observations, 14 parameters."""
    return _logistic_dataset(n, d, seed)
