"""Synthetic mixture data for the HGMM experiments (Figures 10 and 11)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClusterData:
    y: np.ndarray  # (N, D) points
    z: np.ndarray  # (N,) true assignments
    mu: np.ndarray  # (K, D) true centres
    holdout: np.ndarray  # (M, D) held-out points from the same process


def hgmm_synthetic(
    k: int = 3,
    d: int = 2,
    n: int = 1000,
    seed: int = 7,
    separation: float = 6.0,
    within_sd: float = 0.8,
    holdout_frac: float = 0.2,
) -> ClusterData:
    """Well-separated Gaussian clusters, matching the Figure 10 setup
    ("a 2D-HGMM model with 1000 synthetically-generated data points and
    3 clusters")."""
    rng = np.random.default_rng(seed)
    mu = rng.normal(scale=separation, size=(k, d))
    total = int(n * (1 + holdout_frac))
    z = rng.integers(0, k, size=total)
    pts = mu[z] + rng.normal(scale=within_sd, size=(total, d))
    return ClusterData(
        y=pts[:n],
        z=z[:n],
        mu=mu,
        holdout=pts[n:],
    )
