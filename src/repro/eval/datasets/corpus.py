"""Bag-of-words corpora shaped like the UCI Kos and Nips datasets.

Paper Figure 12: "The Kos dataset has a vocabulary size of 6906 and
contains roughly 460k words.  The Nips dataset has a vocabulary size of
12419 and roughly 1.9 million words."  The generators below produce LDA
corpora with those vocabulary sizes and token counts (optionally scaled
down by a factor so the benchmark suite fits on a small machine while
keeping the Kos-vs-Nips shape ratio).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.vectors import RaggedArray


@dataclass(frozen=True)
class Corpus:
    name: str
    w: RaggedArray  # tokens per document (int word ids)
    vocab_size: int
    doc_lengths: np.ndarray

    @property
    def n_docs(self) -> int:
        return self.w.n_rows

    @property
    def n_tokens(self) -> int:
        return self.w.n_elems


def synthetic_corpus(
    name: str,
    vocab_size: int,
    total_tokens: int,
    n_docs: int,
    n_topics_true: int = 20,
    seed: int = 11,
    topic_concentration: float = 0.05,
) -> Corpus:
    """Generate a corpus from the LDA generative process itself, so the
    topic structure the samplers look for is actually present."""
    rng = np.random.default_rng(seed)
    phi = rng.dirichlet(np.full(vocab_size, topic_concentration), size=n_topics_true)
    theta = rng.dirichlet(np.full(n_topics_true, 0.1), size=n_docs)
    base_len = total_tokens // n_docs
    lengths = np.maximum(
        1, rng.poisson(base_len, size=n_docs)
    )
    # Adjust to hit the requested total exactly.
    diff = total_tokens - int(lengths.sum())
    lengths[0] = max(1, lengths[0] + diff)
    docs = []
    for di in range(n_docs):
        topics = rng.choice(n_topics_true, size=lengths[di], p=theta[di])
        # Vectorised per-topic word draws.
        words = np.empty(lengths[di], dtype=np.int64)
        for t in np.unique(topics):
            mask = topics == t
            words[mask] = rng.choice(vocab_size, size=mask.sum(), p=phi[t])
        docs.append(words)
    w = RaggedArray.from_rows(docs)
    return Corpus(name=name, w=w, vocab_size=vocab_size, doc_lengths=np.diff(w.offsets))


def kos_like(scale: float = 1.0, seed: int = 11) -> Corpus:
    """Kos shape: V = 6906, ~460k tokens, ~3430 documents."""
    return synthetic_corpus(
        name=f"Kos(x{scale:g})",
        vocab_size=max(50, int(6906 * min(1.0, scale * 2))),
        total_tokens=max(500, int(460_000 * scale)),
        n_docs=max(10, int(3430 * scale)),
        seed=seed,
    )


def nips_like(scale: float = 1.0, seed: int = 12) -> Corpus:
    """Nips shape: V = 12419, ~1.9M tokens, ~1500 documents."""
    return synthetic_corpus(
        name=f"Nips(x{scale:g})",
        vocab_size=max(80, int(12419 * min(1.0, scale * 2))),
        total_tokens=max(800, int(1_900_000 * scale)),
        n_docs=max(10, int(1500 * scale)),
        seed=seed,
    )
