"""Figure 12: LDA Gibbs, CPU vs. (simulated) GPU, across corpora/topics.

Paper numbers (seconds, 150 samples on a Titan Black):

    Kos-50:   159 vs  60  (~2.7x)      Nips-50:  504 vs 161 (~3.1x)
    Kos-100:  265 vs  73  (~3.6x)      Nips-100: 880 vs 168 (~5.2x)
    Kos-150:  373 vs  82  (~4.6x)      Nips-150: 1354 vs 235 (~5.8x)

Expected shape: the GPU wins more on the larger corpus and with more
topics.  GPU seconds here are the simulator's cost-model time (see
DESIGN.md); CPU seconds are measured wall time, reported alongside a
simulated-CPU figure from the same cost model so the speedup column is
internally consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.eval.datasets import kos_like, nips_like
from repro.eval.datasets.corpus import Corpus
from repro.eval.experiments.common import full_scale
from repro.gpusim import CostModel

#: Single-lane device model used for the "simulated CPU" column: no
#: kernel-launch overhead and one lane, but a per-op time 42x faster
#: than a GPU lane (superscalar + SIMD + cache advantage of a CPU core).
#: With the device's effective width of 256 lanes this bounds the
#: asymptotic GPU speedup at 256/42 ~ 6x, the top of the paper's
#: measured band (2.7x-5.8x); smaller corpora sit below it because the
#: kernel-launch overhead is not yet amortised.
CPU_COST = CostModel(
    width=1,
    launch_overhead=0.0,
    op_time=CostModel.op_time / 42.0,
    # Atomics are ordinary stores on a serial machine.
    atomic_time=CostModel.op_time / 42.0,
    seq_penalty=1.0,
)


@dataclass
class Fig12Row:
    corpus: str
    topics: int
    n_tokens: int
    cpu_seconds: float  # measured wall time of the compiled CPU sampler
    gpu_seconds: float  # simulated device seconds
    cpu_model_seconds: float  # same cost model, single-lane (for the ratio)

    @property
    def speedup(self) -> float:
        return self.cpu_model_seconds / self.gpu_seconds


def lda_hypers(corpus: Corpus, topics: int) -> tuple[dict, dict]:
    hypers = {
        "K": topics,
        "D": corpus.n_docs,
        "V": corpus.vocab_size,
        "N": corpus.doc_lengths,
        "alpha": np.full(topics, 50.0 / topics),
        "beta": np.full(corpus.vocab_size, 0.1),
    }
    return hypers, {"w": corpus.w}


def run_corpus_config(corpus: Corpus, topics: int, samples: int, seed: int = 0) -> Fig12Row:
    hypers, data = lda_hypers(corpus, topics)

    cpu = compile_model(models.LDA, hypers, data)
    t0 = time.perf_counter()
    cpu.sample(num_samples=samples, seed=seed, collect=("phi",))
    cpu_seconds = time.perf_counter() - t0

    gpu = compile_model(
        models.LDA, hypers, data, options=CompileOptions(target="gpu")
    )
    gpu.device.reset()
    gpu.sample(num_samples=samples, seed=seed, collect=("phi",))
    gpu_seconds = gpu.device.elapsed

    # Re-price the same kernels on the single-lane cost model.
    cpu_model = compile_model(
        models.LDA, hypers, data, options=CompileOptions(target="gpu")
    )
    cpu_model.device.cost = CPU_COST
    cpu_model.device.reset()
    cpu_model.sample(num_samples=samples, seed=seed, collect=("phi",))
    cpu_model_seconds = cpu_model.device.elapsed

    return Fig12Row(
        corpus=corpus.name,
        topics=topics,
        n_tokens=corpus.n_tokens,
        cpu_seconds=cpu_seconds,
        gpu_seconds=gpu_seconds,
        cpu_model_seconds=cpu_model_seconds,
    )


def run_fig12(
    topics=(50, 100, 150), samples: int | None = None, seed: int = 0
) -> list[Fig12Row]:
    # Below ~2% scale the simulated kernels are too small to amortise
    # launch overhead and the comparison degenerates; 2% keeps the
    # paper's trends visible on a small machine.
    scale = 1.0 if full_scale() else 0.02
    if samples is None:
        samples = 150 if full_scale() else 5
    corpora = [kos_like(scale=scale), nips_like(scale=scale)]
    rows = []
    for corpus in corpora:
        for k in topics:
            rows.append(run_corpus_config(corpus, k, samples, seed))
    return rows
