"""Figure 10: log-predictive probability vs. training time on a HGMM.

Five systems on the same synthetic clustering problem:

- ``augurv2-gibbs-mu``  -- AugurV2, Gibbs updates everywhere,
- ``augurv2-eslice-mu`` -- AugurV2, Elliptical Slice on the means,
- ``augurv2-hmc-mu``    -- AugurV2, HMC on the means,
- ``jags``              -- the graph-walking Gibbs baseline,
- ``stan``              -- NUTS on the hand-marginalised model.

Matching the paper's protocol: AugurV2 and Jags draw 150 samples with
no burn-in and no thinning; Stan draws 100 samples after 50 tuning
iterations.  The expected shape: every system converges to roughly the
same log-predictive probability, Gibbs/ESlice get there fastest, and
Stan burns far more time per unit of progress (the paper's inset puts
it at 7.5-8 s when the AugurV2 variants finish within ~1.4 s).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.jags import JagsEngine
from repro.baselines.stan import StanSampler
from repro.baselines.stan.marginalize import hgmm_stan_data, marginalized_hgmm_model
from repro.core.compiler import compile_model
from repro.eval import models
from repro.eval.datasets import hgmm_synthetic
from repro.eval.experiments.common import Series, hgmm_hypers
from repro.eval.metrics import mixture_log_predictive

AUGUR_SCHEDULES = {
    "augurv2-gibbs-mu": "Gibbs pi (*) Gibbs mu (*) Gibbs Sigma (*) Gibbs z",
    "augurv2-eslice-mu": "Gibbs pi (*) ESlice mu (*) Gibbs Sigma (*) Gibbs z",
    "augurv2-hmc-mu": "Gibbs pi (*) HMC[steps=8, step_size=0.05] mu (*) Gibbs Sigma (*) Gibbs z",
}


def _augur_series(name, schedule, data, hypers, samples, seed) -> Series:
    sampler = compile_model(
        models.HGMM, dict(hypers, N=data.y.shape[0]), {"y": data.y}, schedule=schedule
    )
    series = Series(name)
    start = time.perf_counter()

    def callback(i, state):
        lp = mixture_log_predictive(
            data.holdout, state["mu"], state["Sigma"], state["pi"]
        )
        series.record(time.perf_counter() - start, lp)

    sampler.sample(num_samples=samples, seed=seed, callback=callback, collect=("pi",))
    return series


def _jags_series(data, hypers, samples, seed) -> Series:
    eng = JagsEngine(models.HGMM, dict(hypers, N=data.y.shape[0]), {"y": data.y})
    series = Series("jags")
    start = time.perf_counter()

    def callback(i, state):
        lp = mixture_log_predictive(
            data.holdout, state["mu"], state["Sigma"], state["pi"]
        )
        series.record(time.perf_counter() - start, lp)

    eng.sample(num_samples=samples, seed=seed, callback=callback, collect=("mu", "Sigma", "pi"))
    return series


def _stan_series(data, hypers, samples, warmup, seed) -> Series:
    k, d = hypers["K"], data.y.shape[1]
    model = marginalized_hgmm_model(k, d)
    sdata = hgmm_stan_data(data.y, hypers["alpha"], hypers["mu_0"], hypers["Sigma_0"])
    sampler = StanSampler(model, sdata, simulate_compile=False)
    series = Series("stan")
    start = time.perf_counter()

    def callback(i, draw):
        mu = draw["mu"]
        logits = np.concatenate([draw["pi_free"], [0.0]])
        pi = np.exp(logits - logits.max())
        pi /= pi.sum()
        sigma = np.stack([np.diag(np.exp(row)) for row in draw["log_s"]])
        lp = mixture_log_predictive(data.holdout, mu, sigma, pi)
        series.record(time.perf_counter() - start, lp)

    sampler.sample(num_samples=samples, warmup=warmup, seed=seed, callback=callback)
    return series


def run_fig10(
    n: int = 1000,
    k: int = 3,
    d: int = 2,
    augur_samples: int = 150,
    stan_samples: int = 100,
    stan_warmup: int = 50,
    seed: int = 0,
    systems: tuple[str, ...] | None = None,
) -> dict[str, Series]:
    data = hgmm_synthetic(k=k, d=d, n=n, seed=seed)
    hypers = hgmm_hypers(k, d)
    out: dict[str, Series] = {}
    wanted = systems or tuple(AUGUR_SCHEDULES) + ("jags", "stan")
    for name, sched in AUGUR_SCHEDULES.items():
        if name in wanted:
            out[name] = _augur_series(name, sched, data, hypers, augur_samples, seed)
    if "jags" in wanted:
        out["jags"] = _jags_series(data, hypers, augur_samples, seed)
    if "stan" in wanted:
        out["stan"] = _stan_series(data, hypers, stan_samples, stan_warmup, seed)
    return out
