"""Reproduction experiments, one module per paper table/figure.

Each module exposes a ``run_*`` function returning structured results;
the ``benchmarks/`` directory wraps these in pytest-benchmark targets
and prints the paper-style rows.  DESIGN.md holds the experiment index;
EXPERIMENTS.md records paper-vs-measured numbers.
"""
