"""Section 7.2 compile-time comparison.

Paper: "It takes roughly 35 seconds for Stan to compile the model (due
to the extensive use of C++ templates in its implementation of AD).
AugurV2 compiles almost instantaneously when generating CPU code, while
it takes roughly 8 seconds to generate GPU code" (the latter being
Nvcc's fault, which we do not model -- see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.stan.compilemodel import simulate_cpp_compile
from repro.baselines.stan.marginalize import hlr_model
from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.eval.datasets import german_credit_like
from repro.eval.experiments.common import full_scale


@dataclass
class CompileRow:
    system: str
    seconds: float
    paper_seconds: str


def run_compile_times(seed: int = 0) -> list[CompileRow]:
    data = german_credit_like() if full_scale() else german_credit_like(n=200, d=8)
    hypers = {"N": data.n, "D": data.d, "lam": 1.0, "x": data.x}
    observed = {"y": data.y}

    t0 = time.perf_counter()
    compile_model(models.HLR, hypers, observed)
    cpu_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    compile_model(models.HLR, hypers, observed, options=CompileOptions(target="gpu"))
    gpu_s = time.perf_counter() - t0

    stan_s = simulate_cpp_compile(
        hlr_model(data.n, data.d),
        {"x": data.x, "y": data.y.astype(np.float64), "lam": 1.0},
    )

    return [
        CompileRow("augurv2-cpu", cpu_s, "~instant"),
        CompileRow("augurv2-gpu", gpu_s, "~8 s (Nvcc; toolchain not modelled)"),
        CompileRow("stan", stan_s, "~35 s"),
    ]
