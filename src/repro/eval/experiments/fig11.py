"""Figure 11: compiled Gibbs (AugurV2) vs. graph-walking Gibbs (Jags).

Both systems run the *same high-level algorithm* -- all-Gibbs sweeps on
the HGMM -- across cluster/dimension/data-size settings; the measured
difference isolates compilation: "Jags reifies the Bayesian network
structure and performs Gibbs sampling on the graph structure, whereas
AugurV2 directly generates code that performs Gibbs sampling using
symbolically computed conditionals."

Paper configurations (k, d, n) and speedups::

    (3, 2, 1000):   0.2 s vs 1.1 s   (~5.5x)
    (3, 2, 10000):  1.4 s vs 17.4 s  (~12.4x)
    (10, 2, 10000): 3.7 s vs 51.5 s  (~13.9x)
    (3, 10, 10000): 15.6 s vs 93.0 s (~5.9x)
    (10, 10, 10000): 17.8 s vs 301.9 s (~16.9x)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.jags import JagsEngine
from repro.core.compiler import compile_model
from repro.eval import models
from repro.eval.datasets import hgmm_synthetic
from repro.eval.experiments.common import full_scale, hgmm_hypers

PAPER_CONFIGS = (
    (3, 2, 1000),
    (3, 2, 10_000),
    (10, 2, 10_000),
    (3, 10, 10_000),
    (10, 10, 10_000),
)

#: CI-sized sweep preserving the growth directions of the paper table.
SMALL_CONFIGS = (
    (3, 2, 200),
    (3, 2, 1000),
    (6, 2, 1000),
    (3, 4, 1000),
    (6, 4, 1000),
)

ALL_GIBBS = "Gibbs pi (*) Gibbs mu (*) Gibbs Sigma (*) Gibbs z"


@dataclass
class Fig11Row:
    k: int
    d: int
    n: int
    augur_seconds: float
    jags_seconds: float

    @property
    def speedup(self) -> float:
        return self.jags_seconds / self.augur_seconds


def run_config(k: int, d: int, n: int, samples: int, seed: int = 0) -> Fig11Row:
    data = hgmm_synthetic(k=k, d=d, n=n, seed=seed, holdout_frac=0.0)
    hypers = dict(hgmm_hypers(k, d), N=n)

    sampler = compile_model(models.HGMM, hypers, {"y": data.y}, schedule=ALL_GIBBS)
    t0 = time.perf_counter()
    sampler.sample(num_samples=samples, seed=seed, collect=("pi",))
    augur_seconds = time.perf_counter() - t0

    eng = JagsEngine(models.HGMM, hypers, {"y": data.y})
    t0 = time.perf_counter()
    eng.sample(num_samples=samples, seed=seed, collect=("pi",))
    jags_seconds = time.perf_counter() - t0

    return Fig11Row(k, d, n, augur_seconds, jags_seconds)


def run_fig11(samples: int | None = None, configs=None, seed: int = 0) -> list[Fig11Row]:
    if configs is None:
        configs = PAPER_CONFIGS if full_scale() else SMALL_CONFIGS
    if samples is None:
        samples = 150 if full_scale() else 25
    return [run_config(k, d, n, samples, seed) for (k, d, n) in configs]
