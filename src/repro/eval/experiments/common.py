"""Shared experiment plumbing."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np


def full_scale() -> bool:
    """Paper-scale runs are opt-in via ``REPRO_FULL=1``."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@dataclass
class Series:
    """A (cumulative seconds, metric) learning curve for one system."""

    system: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    def final(self) -> tuple[float, float]:
        return self.times[-1], self.values[-1]

    def time_to_reach(self, threshold: float) -> float | None:
        """First cumulative time at which the metric reaches ``threshold``."""
        for t, v in zip(self.times, self.values):
            if v >= threshold:
                return t
        return None


class StopWatch:
    def __init__(self) -> None:
        self.start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self.start


def hgmm_hypers(k: int, d: int) -> dict:
    return {
        "K": k,
        "alpha": np.full(k, 1.0),
        "mu_0": np.zeros(d),
        "Sigma_0": np.eye(d) * 100.0,
        "nu": float(d + 2),
        "Psi": np.eye(d),
    }


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width table for benchmark stdout (paper-style)."""
    cols = [headers] + [[str(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cols) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(r, widths))
        )
    return "\n".join(lines)
