"""Section 7.2 HLR experiments (text results, no numbered figure).

Three claims reproduced:

1. **CPU HMC**: AugurV2's compiled HMC is in the same ballpark as the
   Stan-style engine on the all-continuous HLR (paper: AugurV2 ~25 %
   slower than Stan); the Jags-style engine, falling back to adaptive
   rejection sampling node-by-node, is far slower.

2. **GPU on small data**: on the German-Credit shape (~1000 x 24) the
   simulated GPU is *worse* than its own single-lane pricing -- launch
   overheads dominate tiny kernels.

3. **GPU on Adult**: at 50000 x 14 the gradients parallelise well, and
   the summation-block optimisation is what makes it so ("it is more
   efficient to run 14 map-reduces over 50000 elements as opposed to
   launching 50000 threads all contending to increment 14 locations").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.jags import JagsEngine
from repro.baselines.stan import StanSampler
from repro.baselines.stan.marginalize import hlr_model
from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.eval.datasets import adult_like, german_credit_like
from repro.eval.experiments.common import full_scale
from repro.eval.metrics import bernoulli_log_predictive

HLR_SCHEDULE = "HMC[steps=10, step_size=0.02] (sigma2, b, theta)"


@dataclass
class HlrCpuRow:
    system: str
    seconds: float
    samples: int
    holdout_logpred: float


def _hlr_inputs(data):
    hypers = {"N": data.n, "D": data.d, "lam": 1.0, "x": data.x}
    return hypers, {"y": data.y}


def run_hlr_cpu(samples: int | None = None, seed: int = 0) -> list[HlrCpuRow]:
    if full_scale():
        data = german_credit_like()
        samples = samples or 1000
        jags_samples = 50
    else:
        data = german_credit_like(n=200, d=8)
        samples = samples or 100
        jags_samples = 10
    hypers, observed = _hlr_inputs(data)
    holdout = german_credit_like(n=200, d=data.d, seed=999)

    rows: list[HlrCpuRow] = []

    # AugurV2 compiled HMC.
    sampler = compile_model(models.HLR, hypers, observed, schedule=HLR_SCHEDULE)
    t0 = time.perf_counter()
    res = sampler.sample(num_samples=samples, burn_in=samples // 5, seed=seed)
    aug_s = time.perf_counter() - t0
    theta_m = res.array("theta").mean(axis=0)
    b_m = float(res.array("b").mean())
    rows.append(
        HlrCpuRow(
            "augurv2-hmc", aug_s, samples,
            bernoulli_log_predictive(holdout.x, holdout.y, theta_m, b_m),
        )
    )

    # Stan-style NUTS.
    stan = StanSampler(
        hlr_model(data.n, data.d),
        {"x": data.x, "y": data.y.astype(np.float64), "lam": 1.0},
        simulate_compile=False,
    )
    t0 = time.perf_counter()
    sdraws, _ = stan.sample(num_samples=samples, warmup=samples // 5, seed=seed)
    stan_s = time.perf_counter() - t0
    rows.append(
        HlrCpuRow(
            "stan-nuts", stan_s, samples,
            bernoulli_log_predictive(
                holdout.x, holdout.y,
                sdraws["theta"].mean(axis=0), float(sdraws["b"].mean()),
            ),
        )
    )

    # Jags-style ARS (fewer samples -- it is very slow; report per-sample
    # normalised time in the table).
    eng = JagsEngine(models.HLR, hypers, observed)
    t0 = time.perf_counter()
    jdraws, _ = eng.sample(num_samples=jags_samples, seed=seed)
    jags_s = (time.perf_counter() - t0) * (samples / jags_samples)
    rows.append(
        HlrCpuRow(
            "jags-ars", jags_s, samples,
            bernoulli_log_predictive(
                holdout.x, holdout.y,
                np.asarray(jdraws["theta"]).mean(axis=0),
                float(np.mean(jdraws["b"])),
            ),
        )
    )
    return rows


@dataclass
class HlrGpuRow:
    dataset: str
    n: int
    d: int
    gpu_seconds: float
    gpu_seconds_no_sumblk: float
    launch_overhead_fraction: float

    @property
    def sumblk_speedup(self) -> float:
        return self.gpu_seconds_no_sumblk / self.gpu_seconds


def _gpu_row(name, data, sweeps, seed=0) -> HlrGpuRow:
    hypers, observed = _hlr_inputs(data)
    times = {}
    for label, opts in (
        ("on", CompileOptions(target="gpu")),
        ("off", CompileOptions(target="gpu", sum_block_conversion=False)),
    ):
        sampler = compile_model(
            models.HLR, hypers, observed, options=opts, schedule=HLR_SCHEDULE
        )
        sampler.device.reset()
        sampler.sample(num_samples=sweeps, seed=seed, collect=("b",))
        times[label] = sampler.device.elapsed
        if label == "on":
            stats = sampler.device.stats
            launches = stats.kernels_launched + stats.reduce_kernels
            overhead = launches * sampler.device.cost.launch_overhead
            frac = overhead / max(stats.total(), 1e-12)
    return HlrGpuRow(
        dataset=name,
        n=data.n,
        d=data.d,
        gpu_seconds=times["on"],
        gpu_seconds_no_sumblk=times["off"],
        launch_overhead_fraction=frac,
    )


def run_hlr_gpu(sweeps: int | None = None, seed: int = 0) -> list[HlrGpuRow]:
    if full_scale():
        german = german_credit_like()
        adult = adult_like()
        sweeps = sweeps or 100
    else:
        german = german_credit_like(n=500, d=12)
        adult = adult_like(n=20_000, d=14)
        sweeps = sweeps or 10
    return [
        _gpu_row("german-credit-like", german, sweeps, seed),
        _gpu_row("adult-like", adult, sweeps, seed),
    ]
