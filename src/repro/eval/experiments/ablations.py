"""Ablations of the compiler optimisations DESIGN.md calls out.

1. **Summation-block conversion** (Section 5.4): device time for the
   HLR gradient with the conversion on vs. off at Adult scale.
2. **Loop commuting** (Section 5.4): device time for the paper's own
   inline kernel shape -- ``parBlk K { loop N }`` with K << N -- with
   commuting on vs. off.
3. **Categorical-indexing rewrite** (Section 3.3): with the rule off,
   the GMM means lose their conjugate Gibbs update entirely (the
   schedule validator rejects it) and the fallback ESlice update also
   pays an unfactored conditional; we measure the end-to-end slowdown.
4. **Vectorised codegen vs. interpreted loops**: the CPU backend with
   vectorisation disabled, the "interpreted" worst case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.backend.gpu import compile_gpu_module
from repro.core.blk.optimize import OptimizeConfig
from repro.core.compiler import compile_model
from repro.core.density.conditionals import blocked_factors
from repro.core.density.lower import lower_and_factorize
from repro.core.exprs import Gen, IntLit, Var
from repro.core.frontend.parser import parse_model
from repro.core.lowmm.ir import lower_decl
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SLoop,
)
from repro.core.options import CompileOptions
from repro.errors import ScheduleError
from repro.eval import models
from repro.eval.datasets import adult_like
from repro.eval.experiments.common import full_scale
from repro.gpusim import Device
from repro.runtime.rng import Rng


@dataclass
class AblationRow:
    name: str
    baseline: float
    ablated: float
    unit: str

    @property
    def factor(self) -> float:
        return self.ablated / self.baseline


def ablate_sum_block(seed: int = 0) -> AblationRow:
    data = adult_like() if full_scale() else adult_like(n=20_000, d=14)
    fd = lower_and_factorize(parse_model(models.HLR))
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = lower_decl(gen_grad(blk, fd.lets))
    env = {
        "N": data.n, "D": data.d, "lam": 1.0, "x": data.x,
        "sigma2": 1.0, "b": 0.0, "theta": np.zeros(data.d), "y": data.y,
    }
    times = {}
    for label, cfg in (
        ("on", OptimizeConfig()),
        ("off", OptimizeConfig(sum_block_conversion=False)),
    ):
        mod = compile_gpu_module([decl], env, cfg=cfg)
        dev = Device()
        mod.fn(decl.decl.name)(dict(env), {}, Rng(seed), dev)
        times[label] = dev.elapsed
    return AblationRow("sum-block conversion", times["on"], times["off"], "device s")


def ablate_loop_commuting(k: int = 4, n: int = 200_000) -> AblationRow:
    # The paper's Section 5.4 kernel: parBlk K { loop Par N { ... } }.
    decl = lower_decl(
        LDecl(
            name="commute_kernel",
            params=("K", "N", "out"),
            body=(
                SLoop(
                    LoopKind.PAR,
                    Gen("k", IntLit(0), Var("K")),
                    (
                        SLoop(
                            LoopKind.PAR,
                            Gen("n", IntLit(0), Var("N")),
                            (
                                SAssign(
                                    LValue("out", (Var("k"), Var("n"))),
                                    AssignOp.SET,
                                    Var("n"),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
    )
    env = {"K": k, "N": n, "out": np.zeros((k, n))}
    times = {}
    for label, cfg in (
        ("on", OptimizeConfig()),
        ("off", OptimizeConfig(commute_loops=False)),
    ):
        mod = compile_gpu_module([decl], env, cfg=cfg)
        dev = Device()
        mod.fn("commute_kernel")(dict(env), {}, Rng(0), dev)
        times[label] = dev.elapsed
    return AblationRow("loop commuting", times["on"], times["off"], "device s")


def ablate_categorical_rewrite(seed: int = 0):
    """Returns (AblationRow for wall time, bool gibbs_rejected)."""
    rng = np.random.default_rng(seed)
    n = 1000 if full_scale() else 300
    true_mu = np.array([[-4.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    z = rng.integers(0, 3, size=n)
    x = true_mu[z] + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 3, "N": n, "mu_0": np.zeros(2), "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(3, 1 / 3), "Sigma": np.eye(2) * 0.25,
    }
    sweeps = 30

    sampler = compile_model(models.GMM, hypers, {"x": x}, schedule="Gibbs mu (*) Gibbs z")
    t0 = time.perf_counter()
    sampler.sample(num_samples=sweeps, seed=seed, collect=("mu",))
    with_rule = time.perf_counter() - t0

    gibbs_rejected = False
    try:
        compile_model(
            models.GMM, hypers, {"x": x},
            options=CompileOptions(categorical_rule=False),
            schedule="Gibbs mu (*) Gibbs z",
        )
    except ScheduleError:
        gibbs_rejected = True

    fallback = compile_model(
        models.GMM, hypers, {"x": x},
        options=CompileOptions(categorical_rule=False),
        schedule="ESlice mu (*) Gibbs z",
    )
    t0 = time.perf_counter()
    fallback.sample(num_samples=sweeps, seed=seed, collect=("mu",))
    without_rule = time.perf_counter() - t0

    return (
        AblationRow("categorical-indexing rewrite", with_rule, without_rule, "wall s"),
        gibbs_rejected,
    )


def ablate_vectorization(seed: int = 0) -> AblationRow:
    rng = np.random.default_rng(seed)
    n = 2000 if full_scale() else 400
    z = rng.integers(0, 2, size=n)
    x = np.where(z[:, None] == 0, -3.0, 3.0) + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 2, "N": n, "mu_0": np.zeros(2), "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5), "Sigma": np.eye(2) * 0.25,
    }
    sweeps = 20
    times = {}
    for label, opts in (
        ("on", CompileOptions()),
        ("off", CompileOptions(vectorize=False)),
    ):
        sampler = compile_model(models.GMM, hypers, {"x": x}, options=opts)
        t0 = time.perf_counter()
        sampler.sample(num_samples=sweeps, seed=seed, collect=("mu",))
        times[label] = time.perf_counter() - t0
    return AblationRow("vectorised codegen", times["on"], times["off"], "wall s")
