"""Geweke's joint-distribution test ("Getting it right", JASA 2004).

A compiled sampler is correct when the *successive-conditional*
simulator -- alternate one MCMC sweep for ``theta | y`` with a forward
draw ``y | theta`` -- has the same stationary distribution over
``(theta, y)`` as the *marginal-conditional* simulator, which draws
``theta`` from the prior and ``y`` forward, independently each time.
Comparing moments of test functions ``g(theta, y)`` between the two
simulators detects bugs anywhere in the update code: conditionals,
statistics, acceptance ratios, transforms.

This exercises the full compiled pipeline (init, updates, forward) and
is used by the test suite on several conjugate and non-conjugate
models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval.metrics import effective_sample_size
from repro.runtime.rng import Rng


@dataclass
class GewekeResult:
    """Per-test-function z-scores between the two simulators."""

    names: list[str]
    z_scores: np.ndarray
    mc_means: np.ndarray
    sc_means: np.ndarray

    def max_abs_z(self) -> float:
        return float(np.max(np.abs(self.z_scores)))

    def __str__(self) -> str:
        lines = [f"{'g(theta, y)':24s} {'marginal':>12s} {'successive':>12s} {'z':>8s}"]
        for n, m, s, z in zip(self.names, self.mc_means, self.sc_means, self.z_scores):
            lines.append(f"{n:24s} {m:12.4g} {s:12.4g} {z:8.2f}")
        return "\n".join(lines)


def geweke_test(
    source: str,
    hyper_values: dict,
    data_template: dict,
    test_functions: dict,
    n_marginal: int = 2000,
    n_successive: int = 5000,
    thin: int = 1,
    schedule: str | None = None,
    options: CompileOptions | None = None,
    seed: int = 0,
) -> GewekeResult:
    """Run both simulators and compare test-function moments.

    ``data_template`` supplies placeholder observed values (shapes only
    matter); ``test_functions`` maps a name to ``g(state, data) ->
    float``.
    """
    sampler = compile_model(
        source, hyper_values, data_template, options=options, schedule=schedule
    )
    rng = Rng(seed)

    def evaluate(state, data):
        return [float(g(state, data)) for g in test_functions.values()]

    # Marginal-conditional: independent prior + forward draws.
    mc = []
    for _ in range(n_marginal):
        state = sampler.init_state(rng)
        data = sampler.posterior_predictive(state, rng)
        mc.append(evaluate(state, data))
    mc = np.asarray(mc)

    # Successive-conditional: one transition + data refresh per step.
    sc = []
    state = sampler.init_state(rng)
    data = sampler.posterior_predictive(state, rng)
    for i in range(n_successive):
        for name, value in data.items():
            sampler.base_env[name] = value
        sampler.step(state, rng)
        data = sampler.posterior_predictive(state, rng)
        if i % thin == 0:
            sc.append(evaluate(state, data))
    sc = np.asarray(sc)

    names = list(test_functions)
    z = np.empty(len(names))
    for j in range(len(names)):
        m_mc, m_sc = mc[:, j].mean(), sc[:, j].mean()
        v_mc = mc[:, j].var(ddof=1) / mc.shape[0]
        ess = max(effective_sample_size(sc[:, j]), 2.0)
        v_sc = sc[:, j].var(ddof=1) / ess
        z[j] = (m_mc - m_sc) / np.sqrt(v_mc + v_sc + 1e-300)
    return GewekeResult(
        names=names,
        z_scores=z,
        mc_means=mc.mean(axis=0),
        sc_means=sc.mean(axis=0),
    )
