"""Evaluation metrics.

The Figure 10 metric is the log-predictive probability of held-out
points -- "a proxy for learning: as training time increases, the
algorithm should be able to make better predictions".  Effective sample
size is included for general chain diagnostics, as are the modern
(Vehtari et al. 2021) variants: rank-normalized split R-hat and
bulk/tail ESS, which stay calibrated for heavy-tailed posteriors and
detect within-chain non-stationarity that the classic Gelman-Rubin
statistic misses.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri
from scipy.stats import multivariate_normal, rankdata


def mixture_log_predictive(
    holdout: np.ndarray,
    mu: np.ndarray,
    sigma,
    pi: np.ndarray | None = None,
) -> float:
    """Log predictive probability of held-out points under one posterior
    draw of a Gaussian mixture.

    ``sigma`` may be a single shared covariance ``(D, D)`` or per-cluster
    ``(K, D, D)``; ``pi`` defaults to uniform weights.
    """
    holdout = np.asarray(holdout, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    k = mu.shape[0]
    if pi is None:
        pi = np.full(k, 1.0 / k)
    sigma = np.asarray(sigma, dtype=np.float64)
    comp = np.empty((holdout.shape[0], k))
    for j in range(k):
        cov = sigma[j] if sigma.ndim == 3 else sigma
        comp[:, j] = multivariate_normal(mu[j], cov, allow_singular=True).logpdf(
            holdout
        )
    logits = comp + np.log(np.asarray(pi) + 1e-300)
    m = logits.max(axis=1, keepdims=True)
    return float(np.sum(m.squeeze(1) + np.log(np.exp(logits - m).sum(axis=1))))


def bernoulli_log_predictive(x, y, theta, bias) -> float:
    """Held-out log likelihood for a logistic-regression posterior draw."""
    logits = x @ np.asarray(theta) + float(bias)
    p = 1.0 / (1.0 + np.exp(-logits))
    eps = 1e-12
    y = np.asarray(y)
    return float(np.sum(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))


def effective_sample_size(draws: np.ndarray, max_lag: int | None = None) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator."""
    x = np.asarray(draws, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        return float(n)
    x = x - x.mean()
    var = float(np.sum(x * x)) / n
    if var == 0:
        return float(n)
    max_lag = max_lag or min(n - 2, 1000)
    # FFT autocorrelation.
    size = int(2 ** np.ceil(np.log2(2 * n)))
    f = np.fft.rfft(x, size)
    acf = np.fft.irfft(f * np.conj(f))[: max_lag + 1].real / (n * var)
    # Sum consecutive pairs while positive (Geyer).
    rho_sum = 0.0
    for lag in range(1, max_lag, 2):
        pair = acf[lag] + (acf[lag + 1] if lag + 1 <= max_lag else 0.0)
        if pair < 0:
            break
        rho_sum += pair
    ess = n / (1.0 + 2.0 * rho_sum)
    return float(min(max(ess, 1.0), n))


def potential_scale_reduction(chains: np.ndarray) -> float:
    """Gelman-Rubin R-hat over ``(n_chains, n_draws)`` scalar chains."""
    chains = np.asarray(chains, dtype=np.float64)
    m, n = chains.shape
    if m < 2 or n < 2:
        raise ValueError("R-hat needs at least 2 chains of length 2")
    means = chains.mean(axis=1)
    b = n * means.var(ddof=1)
    w = chains.var(axis=1, ddof=1).mean()
    if w <= 0.0:
        return 1.0 if b <= 0.0 else float("inf")
    var_plus = (n - 1) / n * w + b / n
    return float(np.sqrt(var_plus / w))


def split_chains(chains: np.ndarray) -> np.ndarray:
    """Split ``(m, n)`` chains into ``(2m, n // 2)`` half chains.

    Splitting makes R-hat sensitive to within-chain non-stationarity
    (a chain still drifting looks like two disagreeing half chains).
    An odd middle draw is discarded.
    """
    chains = np.asarray(chains, dtype=np.float64)
    m, n = chains.shape
    half = n // 2
    if half < 2:
        raise ValueError("splitting needs at least 4 draws per chain")
    return np.concatenate([chains[:, :half], chains[:, n - half :]], axis=0)


def rank_normalize(chains: np.ndarray) -> np.ndarray:
    """Map draws to normal scores via pooled ranks (Vehtari et al. 2021).

    Ranks are taken over the pooled draws of all chains (average ties),
    then pushed through the normal quantile function with the Blom
    offset ``(r - 3/8) / (S + 1/4)``.  The result is standard-normal-ish
    regardless of the posterior's tails, which is what makes the
    rank-normalized diagnostics robust to infinite variance.
    """
    chains = np.asarray(chains, dtype=np.float64)
    ranks = rankdata(chains, method="average").reshape(chains.shape)
    return ndtri((ranks - 0.375) / (chains.size + 0.25))


def split_potential_scale_reduction(chains: np.ndarray) -> float:
    """Rank-normalized split R-hat (Vehtari et al. 2021).

    The reported value is the max of R-hat on the rank-normalized split
    chains (location disagreement) and on the folded draws
    ``|x - median|`` (scale disagreement), so it catches chains that
    agree in mean but differ in spread.
    """
    chains = np.asarray(chains, dtype=np.float64)
    bulk = potential_scale_reduction(rank_normalize(split_chains(chains)))
    folded = np.abs(chains - np.median(chains))
    scale = potential_scale_reduction(rank_normalize(split_chains(folded)))
    return float(max(bulk, scale))


def _multichain_ess(chains: np.ndarray) -> float:
    """Cross-chain ESS from combined autocovariances (Stan's estimator).

    Per-chain autocovariances are averaged and rescaled by the
    between-chain variance, then summed with Geyer's initial monotone
    positive sequence.
    """
    chains = np.asarray(chains, dtype=np.float64)
    m, n = chains.shape
    if n < 4:
        return float(m * n)
    size = int(2 ** np.ceil(np.log2(2 * n)))
    centered = chains - chains.mean(axis=1, keepdims=True)
    f = np.fft.rfft(centered, size, axis=1)
    acov = np.fft.irfft(f * np.conj(f), axis=1)[:, :n].real / n
    chain_var = acov[:, 0] * n / (n - 1)
    mean_var = float(chain_var.mean())
    var_plus = mean_var * (n - 1) / n
    if m > 1:
        var_plus += float(chains.mean(axis=1).var(ddof=1))
    if var_plus <= 0.0:
        return float(m * n)
    rho = 1.0 - (mean_var - acov.mean(axis=0)) / var_plus
    # Geyer initial monotone positive sequence over consecutive pairs.
    tau = 1.0
    prev_pair = np.inf
    for lag in range(1, n - 1, 2):
        pair = float(rho[lag] + rho[lag + 1])
        if pair < 0.0:
            break
        pair = min(pair, prev_pair)  # enforce monotone decrease
        tau += 2.0 * pair
        prev_pair = pair
    ess = m * n / tau
    return float(min(max(ess, 1.0), m * n))


def ess_bulk(chains: np.ndarray) -> float:
    """Bulk ESS: cross-chain ESS of the rank-normalized split chains."""
    return _multichain_ess(rank_normalize(split_chains(chains)))


def ess_tail(chains: np.ndarray) -> float:
    """Tail ESS: the worse of the 5% / 95% quantile-indicator ESSs.

    Measures how reliably the chains resolve tail quantiles, which the
    bulk estimator over-states for sticky tails.
    """
    split = split_chains(chains)
    q05, q95 = np.quantile(split, [0.05, 0.95])
    lower = _multichain_ess(rank_normalize((split <= q05).astype(np.float64)))
    upper = _multichain_ess(rank_normalize((split >= q95).astype(np.float64)))
    return float(min(lower, upper))
