"""Evaluation metrics.

The Figure 10 metric is the log-predictive probability of held-out
points -- "a proxy for learning: as training time increases, the
algorithm should be able to make better predictions".  Effective sample
size is included for general chain diagnostics.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import multivariate_normal


def mixture_log_predictive(
    holdout: np.ndarray,
    mu: np.ndarray,
    sigma,
    pi: np.ndarray | None = None,
) -> float:
    """Log predictive probability of held-out points under one posterior
    draw of a Gaussian mixture.

    ``sigma`` may be a single shared covariance ``(D, D)`` or per-cluster
    ``(K, D, D)``; ``pi`` defaults to uniform weights.
    """
    holdout = np.asarray(holdout, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    k = mu.shape[0]
    if pi is None:
        pi = np.full(k, 1.0 / k)
    sigma = np.asarray(sigma, dtype=np.float64)
    comp = np.empty((holdout.shape[0], k))
    for j in range(k):
        cov = sigma[j] if sigma.ndim == 3 else sigma
        comp[:, j] = multivariate_normal(mu[j], cov, allow_singular=True).logpdf(
            holdout
        )
    logits = comp + np.log(np.asarray(pi) + 1e-300)
    m = logits.max(axis=1, keepdims=True)
    return float(np.sum(m.squeeze(1) + np.log(np.exp(logits - m).sum(axis=1))))


def bernoulli_log_predictive(x, y, theta, bias) -> float:
    """Held-out log likelihood for a logistic-regression posterior draw."""
    logits = x @ np.asarray(theta) + float(bias)
    p = 1.0 / (1.0 + np.exp(-logits))
    eps = 1e-12
    y = np.asarray(y)
    return float(np.sum(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))


def effective_sample_size(draws: np.ndarray, max_lag: int | None = None) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator."""
    x = np.asarray(draws, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        return float(n)
    x = x - x.mean()
    var = float(np.sum(x * x)) / n
    if var == 0:
        return float(n)
    max_lag = max_lag or min(n - 2, 1000)
    # FFT autocorrelation.
    size = int(2 ** np.ceil(np.log2(2 * n)))
    f = np.fft.rfft(x, size)
    acf = np.fft.irfft(f * np.conj(f))[: max_lag + 1].real / (n * var)
    # Sum consecutive pairs while positive (Geyer).
    rho_sum = 0.0
    for lag in range(1, max_lag, 2):
        pair = acf[lag] + (acf[lag + 1] if lag + 1 <= max_lag else 0.0)
        if pair < 0:
            break
        rho_sum += pair
    ess = n / (1.0 + 2.0 * rho_sum)
    return float(min(max(ess, 1.0), n))


def potential_scale_reduction(chains: np.ndarray) -> float:
    """Gelman-Rubin R-hat over ``(n_chains, n_draws)`` scalar chains."""
    chains = np.asarray(chains, dtype=np.float64)
    m, n = chains.shape
    if m < 2 or n < 2:
        raise ValueError("R-hat needs at least 2 chains of length 2")
    means = chains.mean(axis=1)
    b = n * means.var(ddof=1)
    w = chains.var(axis=1, ddof=1).mean()
    var_plus = (n - 1) / n * w + b / n
    return float(np.sqrt(var_plus / w))
