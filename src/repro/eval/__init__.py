"""Evaluation harness: model zoo, synthetic datasets, and metrics."""
