"""Chain diagnostics and terminal-friendly trace plots.

The paper verifies samplers by inspecting trace plots (Section 7.2,
"we visually verified the trace plots of each system"); this module
makes that workflow available in a terminal: ASCII traces, per-parameter
summaries with effective sample sizes, and multi-chain R-hat reports.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import (
    effective_sample_size,
    ess_bulk,
    ess_tail,
    potential_scale_reduction,
    split_potential_scale_reduction,
)


def ascii_series(
    values,
    width: int = 64,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a 1-D series as an ASCII line chart."""
    y = np.asarray(values, dtype=np.float64).ravel()
    if y.size == 0:
        return "(empty series)"
    finite = y[np.isfinite(y)]
    if finite.size == 0:
        return "(no finite values)"
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < 1e-300:
        hi = lo + 1.0
    # Downsample to the display width.
    idx = np.linspace(0, y.size - 1, num=min(width, y.size)).astype(int)
    ys = y[idx]
    rows = [[" "] * len(ys) for _ in range(height)]
    for c, v in enumerate(ys):
        if not np.isfinite(v):
            continue
        r = int((v - lo) / (hi - lo) * (height - 1))
        rows[height - 1 - r][c] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{hi:>12.4g} +" + "".join(rows[0]))
    for row in rows[1:-1]:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{lo:>12.4g} +" + "".join(rows[-1]))
    lines.append(" " * 14 + f"1 .. {y.size} (draws)")
    return "\n".join(lines)


def _scalar_traces(draws: np.ndarray) -> dict[str, np.ndarray]:
    """Flatten a (draws, *shape) array into named scalar traces."""
    draws = np.asarray(draws)
    if draws.ndim == 1:
        return {"": draws}
    flat = draws.reshape(draws.shape[0], -1)
    out = {}
    for j in range(flat.shape[1]):
        idx = np.unravel_index(j, draws.shape[1:])
        out["[" + ",".join(map(str, idx)) + "]"] = flat[:, j]
    return out


def trace_summary(samples: dict[str, np.ndarray], max_components: int = 8) -> str:
    """Per-parameter posterior summary: mean, sd, 5/95 %, ESS."""
    lines = [
        f"{'parameter':22s} {'mean':>10s} {'sd':>10s} {'5%':>10s} "
        f"{'95%':>10s} {'ESS':>8s}"
    ]
    for name, draws in samples.items():
        traces = _scalar_traces(np.asarray(draws, dtype=np.float64))
        shown = 0
        for comp, tr in traces.items():
            if shown >= max_components:
                lines.append(f"{name}(...) {len(traces) - shown} more components")
                break
            q5, q95 = np.percentile(tr, [5, 95])
            lines.append(
                f"{name + comp:22s} {tr.mean():10.4g} {tr.std():10.4g} "
                f"{q5:10.4g} {q95:10.4g} {effective_sample_size(tr):8.0f}"
            )
            shown += 1
    return "\n".join(lines)


def trace_plot(samples: dict[str, np.ndarray], parameter: str, component=None) -> str:
    """ASCII trace plot of one (component of one) parameter."""
    draws = np.asarray(samples[parameter], dtype=np.float64)
    if draws.ndim > 1:
        if component is None:
            component = (0,) * (draws.ndim - 1)
        series = draws[(slice(None),) + tuple(component)]
        label = f"trace of {parameter}[{','.join(map(str, component))}]"
    else:
        series = draws
        label = f"trace of {parameter}"
    return ascii_series(series, label=label)


def rhat_report(chain_results, parameter: str) -> str:
    """Rank-normalized split R-hat + bulk/tail ESS for every scalar
    component of ``parameter`` across chains.

    Chains shorter than 4 draws cannot be split; they fall back to the
    classic Gelman-Rubin statistic (flagged in the header) with ESS
    columns omitted.
    """
    chains = [np.asarray(r[parameter], dtype=np.float64) for r in chain_results]
    stacked = np.stack(chains)  # (chains, draws, *shape)
    flat = stacked.reshape(stacked.shape[0], stacked.shape[1], -1)
    split = flat.shape[1] >= 4
    kind = "split R-hat" if split else "R-hat (too few draws to split)"
    lines = [f"{kind} for {parameter!r} over {flat.shape[0]} chains:"]
    worst = 0.0
    for j in range(flat.shape[2]):
        comp = flat[:, :, j]
        idx = np.unravel_index(j, stacked.shape[2:]) if stacked.ndim > 2 else ()
        tag = "[" + ",".join(map(str, idx)) + "]" if idx else ""
        if split:
            r = split_potential_scale_reduction(comp)
            lines.append(
                f"  {parameter}{tag}: {r:.3f}  "
                f"(bulk ESS {ess_bulk(comp):.0f}, tail ESS {ess_tail(comp):.0f})"
            )
        else:
            r = potential_scale_reduction(comp)
            lines.append(f"  {parameter}{tag}: {r:.3f}")
        worst = max(worst, r)
    verdict = "OK (< 1.1)" if worst < 1.1 else "NOT CONVERGED"
    lines.append(f"  worst: {worst:.3f} -- {verdict}")
    return "\n".join(lines)
