"""The model zoo: source text for every model in the paper's evaluation.

These are the three Section 7.2 benchmark models (HLR, HGMM, LDA), the
introductory GMM (Figure 1), and a few small models used by tests.
"""

GMM = """
(K, N, mu_0, Sigma_0, pis, Sigma) => {
  param mu[k] ~ MvNormal(mu_0, Sigma_0)
    for k <- 0 until K ;
  param z[n] ~ Categorical(pis)
    for n <- 0 until N ;
  data x[n] ~ MvNormal(mu[z[n]], Sigma)
    for n <- 0 until N ;
}
"""

#: Hierarchical Gaussian Mixture Model (paper Section 7.2): mixture
#: weights, per-cluster means and covariances are all inferred.
HGMM = """
(K, N, alpha, mu_0, Sigma_0, nu, Psi) => {
  param pi ~ Dirichlet(alpha) ;
  param mu[k] ~ MvNormal(mu_0, Sigma_0)
    for k <- 0 until K ;
  param Sigma[k] ~ InvWishart(nu, Psi)
    for k <- 0 until K ;
  param z[n] ~ Categorical(pi)
    for n <- 0 until N ;
  data y[n] ~ MvNormal(mu[z[n]], Sigma[z[n]])
    for n <- 0 until N ;
}
"""

#: Hierarchical Logistic Regression (paper Section 7.2).  ``x`` is the
#: observed feature matrix, closed over as a hyper-parameter; ``lam``
#: is the prior rate on the shared variance.
HLR = """
(N, D, lam, x) => {
  param sigma2 ~ Exponential(lam) ;
  param b ~ Normal(0.0, sigma2) ;
  param theta[j] ~ Normal(0.0, sigma2)
    for j <- 0 until D ;
  data y[n] ~ Bernoulli(sigmoid(dotp(x[n], theta) + b))
    for n <- 0 until N ;
}
"""

#: Latent Dirichlet Allocation (paper Section 7.2).  ``N`` is the
#: per-document token-count vector, so the token comprehensions are
#: ragged.
LDA = """
(K, D, V, N, alpha, beta) => {
  param theta[d] ~ Dirichlet(alpha)
    for d <- 0 until D ;
  param phi[k] ~ Dirichlet(beta)
    for k <- 0 until K ;
  param z[d][j] ~ Categorical(theta[d])
    for d <- 0 until D, j <- 0 until N[d] ;
  data w[d][j] ~ Categorical(phi[z[d][j]])
    for d <- 0 until D, j <- 0 until N[d] ;
}
"""

#: Conjugate Normal-Normal chain: the simplest Gibbs-able model.
NORMAL_NORMAL = """
(N, mu_0, v_0, v) => {
  param mu ~ Normal(mu_0, v_0) ;
  data y[n] ~ Normal(mu, v)
    for n <- 0 until N ;
}
"""

#: Beta-Bernoulli coin model.
BETA_BERNOULLI = """
(N, a, b) => {
  param p ~ Beta(a, b) ;
  data y[n] ~ Bernoulli(p)
    for n <- 0 until N ;
}
"""

#: Gamma-Poisson count model.
GAMMA_POISSON = """
(N, a, b) => {
  param rate ~ Gamma(a, b) ;
  data y[n] ~ Poisson(rate)
    for n <- 0 until N ;
}
"""

#: Dirichlet-Categorical (a one-level LDA ingredient).
DIRICHLET_CATEGORICAL = """
(N, alpha) => {
  param pi ~ Dirichlet(alpha) ;
  data y[n] ~ Categorical(pi)
    for n <- 0 until N ;
}
"""

#: The Section 5.4 running example: a positive scale parameter over
#: normal observations -- exercises the AtmPar -> sumBlk conversion.
EXP_NORMAL = """
(N, lam) => {
  param v ~ Exponential(lam) ;
  data y[n] ~ Normal(0.0, v)
    for n <- 0 until N ;
}
"""

#: Sigmoid Belief Network (one hidden layer) -- the paper lists "deep
#: generative models such as sigmoid belief networks" among the
#: expressible model class (Section 2).  The hidden units appear as a
#: whole vector inside the sigmoid link, so no per-element enumeration
#: exists; they are sampled with user-proposal MH (bit flips).
SBN = """
(H, V, ph, W, b) => {
  param h[j] ~ Bernoulli(ph)
    for j <- 0 until H ;
  data x[v] ~ Bernoulli(sigmoid(dotp(W[v], h) + b[v]))
    for v <- 0 until V ;
}
"""

def make_unrolled_hmm(t_steps: int) -> str:
    """Build an unrolled Hidden Markov Model source string.

    The paper (Section 2.2): sequential dependence must be written "by
    unfolding the entire model.  This is doable, but does not take
    advantage of the design of AugurV2."  This helper does the
    unfolding: one hidden-state declaration per time step, each drawn
    from the transition row selected by its predecessor, with a Normal
    emission per step.  Every hidden state gets an enumeration-Gibbs
    update, so the compiled sampler is a full forward-filtering-free
    Gibbs HMM.
    """
    if t_steps < 1:
        raise ValueError("an HMM needs at least one time step")
    decls = ["  param h0 ~ Categorical(pi0) ;"]
    for t in range(1, t_steps):
        decls.append(f"  param h{t} ~ Categorical(trans[h{t - 1}]) ;")
    for t in range(t_steps):
        decls.append(f"  data y{t} ~ Normal(means[h{t}], v) ;")
    body = "\n".join(decls)
    return f"(pi0, trans, means, v) => {{\n{body}\n}}"


ALL_MODELS = {
    "gmm": GMM,
    "hgmm": HGMM,
    "hlr": HLR,
    "lda": LDA,
    "normal_normal": NORMAL_NORMAL,
    "beta_bernoulli": BETA_BERNOULLI,
    "gamma_poisson": GAMMA_POISSON,
    "dirichlet_categorical": DIRICHLET_CATEGORICAL,
    "exp_normal": EXP_NORMAL,
    "sbn": SBN,
}
