"""Command-line interface: compile and sample models from the shell.

::

    python -m repro sample model.augur inputs.json --samples 500 \
        --schedule "ESlice mu (*) Gibbs z" --out draws.npz --summary
    python -m repro sample model.augur inputs.json --samples 500 \
        --chains 4 --executor processes --out draws.npz
    python -m repro inspect model.augur inputs.json --source

With ``--chains N`` (N > 1) the chains fan out over the selected
executor, an R-hat report is printed per collected parameter, and
draws are saved under ``chainI__name`` keys.

Telemetry flags: ``--stats`` records per-sweep sampler statistics and
prints a summary; ``--monitor`` streams online convergence diagnostics
(split R-hat / ESS / divergence rates) during multi-chain runs;
``--trace FILE`` writes a chrome://tracing JSON covering every compiler
stage and runtime phase (open via ``chrome://tracing`` or Perfetto);
``--trace-plot NAME`` prints an ASCII trace plot of a parameter;
``--profile`` attributes sweep wall-time to every update, generated
declaration, and model statement; ``--explain`` prints the compiler
decision ledger (``--explain-json FILE`` writes it machine-readable);
``--report FILE`` -- or the ``repro report`` subcommand -- writes a
self-contained HTML inference report with a ``.json`` twin.

Inputs are a single ``.json`` or ``.npz`` file providing a value for
every hyper-parameter and observed variable; the model's declarations
decide which is which.  JSON nested lists with unequal row lengths load
as ragged arrays.  Draws are written to ``.npz`` (ragged variables are
stored as a flat buffer plus offsets).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.core.frontend.parser import parse_model
from repro.errors import ReproError
from repro.runtime.vectors import RaggedArray


def _coerce_json_value(v):
    if isinstance(v, bool):
        raise ReproError("booleans are not model values")
    if isinstance(v, (int, float)):
        return v
    if isinstance(v, list):
        if v and all(isinstance(r, list) for r in v):
            lengths = {len(r) for r in v}
            inner_is_list = any(isinstance(x, list) for r in v for x in r)
            if len(lengths) > 1 and not inner_is_list:
                dtype = (
                    np.int64
                    if all(isinstance(x, int) for r in v for x in r)
                    else np.float64
                )
                return RaggedArray.from_rows(v, dtype=dtype)
        arr = np.asarray(v)
        if arr.dtype == object:
            raise ReproError("could not interpret a JSON value as an array")
        return arr
    raise ReproError(f"unsupported JSON value of type {type(v).__name__}")


def load_inputs(path: str) -> dict:
    """Load a values file (.json or .npz) into model-ready values."""
    if path.endswith(".json"):
        with open(path) as f:
            raw = json.load(f)
        if not isinstance(raw, dict):
            raise ReproError("the inputs file must hold an object at top level")
        return {k: _coerce_json_value(v) for k, v in raw.items()}
    if path.endswith(".npz"):
        out = {}
        with np.load(path) as data:
            for k in data.files:
                v = data[k]
                out[k] = v.item() if v.ndim == 0 else v
        return out
    raise ReproError(f"unsupported inputs format: {path!r} (use .json or .npz)")


def split_inputs(source: str, values: dict) -> tuple[dict, dict]:
    model = parse_model(source)
    hypers = {h: values[h] for h in model.hypers if h in values}
    data = {d.name: values[d.name] for d in model.data if d.name in values}
    missing = [h for h in model.hypers if h not in values] + [
        d.name for d in model.data if d.name not in values
    ]
    if missing:
        raise ReproError(f"inputs file is missing values for: {missing}")
    return hypers, data


def _collect_arrays(out: dict, samples: dict, prefix: str = "") -> None:
    for name, draws in samples.items():
        if isinstance(draws, np.ndarray):
            out[prefix + name] = draws
        elif draws and isinstance(draws[0], RaggedArray):
            out[prefix + name + "__flat"] = np.stack([d.flat for d in draws])
            out[prefix + name + "__offsets"] = draws[0].offsets
        else:
            out[prefix + name] = np.asarray(draws)


def save_draws(path: str, samples: dict) -> None:
    arrays: dict = {}
    _collect_arrays(arrays, samples)
    np.savez(path, **arrays)


def save_chain_draws(path: str, results: list) -> None:
    """Write every chain's draws to one ``.npz`` (``chainI__name`` keys)."""
    arrays: dict = {}
    for i, res in enumerate(results):
        _collect_arrays(arrays, res.samples, prefix=f"chain{i}__")
    np.savez(path, **arrays)


def _build(args) -> "tuple":
    with open(args.model) as f:
        source = f.read()
    values = load_inputs(args.inputs)
    hypers, data = split_inputs(source, values)
    options = CompileOptions(target=args.target)
    if getattr(args, "tune", False):
        from repro.tune import autotune

        sampler = autotune(
            source, hypers, data, options=options, schedule=args.schedule,
            executor=getattr(args, "executor", None),
            n_workers=getattr(args, "workers", None),
        )
    else:
        sampler = compile_model(
            source, hypers, data, options=options, schedule=args.schedule
        )
    return source, sampler


def _print_tournament(sampler) -> None:
    if getattr(sampler, "tune_report", None) is not None:
        from repro.tune import render_tournament

        print(render_tournament(sampler.tune_report))


def _resolve_warmup(args, sampler) -> int:
    """The run's warmup sweep count.

    ``--warmup N`` wins outright.  Left unset, warmup defaults *on*
    (``min(samples, 1000)`` sweeps) whenever the schedule contains an
    HMC/NUTS update whose step size was not pinned in the model text --
    those are exactly the runs dual averaging exists for -- and off
    everywhere else, keeping fixed-step runs bitwise identical.
    """
    if getattr(args, "warmup", None) is not None:
        return args.warmup
    from repro.core.backend.drivers import GradBlockDriver

    adaptive = any(
        isinstance(u, GradBlockDriver) and not u.user_step_size
        for u in sampler.updates
    )
    return min(args.samples, 1000) if adaptive else 0


def _write_pipeline_trace(path: str) -> None:
    from repro.telemetry.trace import get_tracer, write_trace

    write_trace(path)
    print(f"wrote pipeline trace ({len(get_tracer().events)} events) to {path}")


def cmd_sample(args) -> int:
    if args.chains < 1:
        raise ReproError(f"--chains must be positive, got {args.chains}")
    if args.trace:
        from repro.telemetry.trace import enable_tracing

        enable_tracing()
    if args.log_json:
        from repro.telemetry.obslog import configure_event_log

        configure_event_log(path=args.log_json, level="debug")
    _, sampler = _build(args)
    if args.explain:
        print(sampler.explain())
        _print_tournament(sampler)
    if args.explain_json:
        with open(args.explain_json, "w") as f:
            json.dump(sampler.explain_json(), f, indent=2)
        print(f"wrote explain ledger to {args.explain_json}")
    warmup = _resolve_warmup(args, sampler)
    if args.chains > 1:
        return _sample_chains(args, sampler, warmup)
    want_profile = args.profile or bool(args.report)
    result = sampler.sample(
        num_samples=args.samples,
        burn_in=args.burn_in,
        thin=args.thin,
        seed=args.seed,
        collect=tuple(args.collect.split(",")) if args.collect else None,
        collect_stats=args.stats or bool(args.report),
        profile=want_profile,
        warmup=warmup,
        target_accept=args.target_accept,
    )
    print(
        f"compiled in {sampler.compile_seconds*1e3:.1f} ms; "
        f"schedule: {sampler.schedule_description()}"
    )
    if warmup:
        print(
            f"warmup: {warmup} adaptation sweeps "
            f"(target accept {args.target_accept:.2f})"
        )
        for label, st in sorted((result.adapt_state or {}).items()):
            if st.get("step_size") is not None:
                print(f"  adapted step size {label}: {st['step_size']:.4g}")
    print(
        f"drew {args.samples} samples in {result.wall_time:.2f} s "
        f"({args.samples / max(result.wall_time, 1e-9):.1f} samples/s)"
    )
    for upd, rate in result.acceptance.items():
        print(f"  acceptance {upd}: {rate:.3f}")
    if args.stats and result.stats is not None:
        print("sample stats (per-sweep means):")
        for line in result.stats.summary_lines():
            print(line)
    if args.profile and result.profile is not None:
        print(result.profile.table(sampler.source_map))
    if args.report:
        from repro.telemetry.report import write_report

        write_report(args.report, sampler, [result])
        print(f"wrote inference report to {args.report}")
    if args.out:
        save_draws(args.out, result.samples)
        print(f"wrote draws to {args.out}")
    if args.summary:
        from repro.eval.diagnostics import trace_summary

        print()
        print(trace_summary(result.samples))
    if args.trace_plot:
        from repro.eval.diagnostics import trace_plot

        print()
        print(trace_plot(result.samples, args.trace_plot))
    if args.trace:
        _write_pipeline_trace(args.trace)
    return 0


def _sample_chains(args, sampler, warmup: int = 0) -> int:
    collect = tuple(args.collect.split(",")) if args.collect else None
    monitor = None
    if args.monitor or args.early_stop_rhat is not None:
        from repro.telemetry.monitors import ConvergenceMonitor

        monitor = ConvergenceMonitor(
            param_names=collect or sampler.param_names,
            n_chains=args.chains,
            total_draws=max(args.samples, 4),
            divergence_warn=args.divergence_warn,
            emit=(
                (lambda line: print(line, file=sys.stderr))
                if args.monitor
                else None
            ),
        )
    want_profile = args.profile or bool(args.report)
    common = dict(
        n_chains=args.chains,
        num_samples=args.samples,
        burn_in=args.burn_in,
        thin=args.thin,
        seed=args.seed,
        collect=collect,
        executor=args.executor,
        n_workers=args.workers,
        # --stream wants per-chunk acceptance/divergence digests too.
        collect_stats=(
            args.stats or args.monitor or args.stream or bool(args.report)
        ),
        monitor=monitor,
        profile=want_profile,
        chunk_size=args.chunk_size,
        early_stop_rhat=args.early_stop_rhat,
        warmup=warmup,
        target_accept=args.target_accept,
    )
    if warmup:
        print(
            f"warmup: {warmup} adaptation sweeps per chain "
            f"(target accept {args.target_accept:.2f})",
            file=sys.stderr,
        )
    if args.stream:
        stream = sampler.stream_chains(**common)
        if sys.stderr.isatty():
            from repro.telemetry.progress import StreamProgress

            progress = StreamProgress(
                args.chains, args.samples,
                divergence_warn=args.divergence_warn,
            )
            for chunk in stream:
                progress.update(chunk, stream.monitor)
            progress.close()
        else:
            for chunk in stream:
                phase = (chunk.info or {}).get("__phase__")
                if phase is not None and phase.get("phase") == "warmup":
                    line = (
                        f"[stream] chain {chunk.chain}: warmup "
                        f"{phase.get('sweep')}/{phase.get('warmup')}"
                    )
                    if phase.get("step_size") is not None:
                        line += f" | step {phase['step_size']:.3g}"
                    print(line, file=sys.stderr)
                    continue
                line = (
                    f"[stream] chain {chunk.chain}: "
                    f"draws {chunk.start}..{chunk.stop}"
                )
                if chunk.info:
                    bits = []
                    for label, entry in sorted(chunk.info.items()):
                        if label == "__phase__":
                            continue
                        rate = entry.get("accept_rate")
                        if rate is not None and rate == rate:
                            bits.append(f"{label} accept {rate:.2f}")
                        div = entry.get("divergent", 0)
                        if div:
                            bits.append(f"{label} divergent {div}")
                        nan = entry.get("nan_rejects", 0)
                        if nan:
                            bits.append(f"{label} nan-rejects {nan}")
                    if bits:
                        line += " | " + ", ".join(bits)
                print(line, file=sys.stderr)
        results = stream.results
    else:
        results = sampler.sample_chains(**common)
    total = sum(r.wall_time for r in results)
    longest = max(r.wall_time for r in results)
    print(
        f"compiled in {sampler.compile_seconds*1e3:.1f} ms; "
        f"schedule: {sampler.schedule_description()}"
    )
    print(
        f"ran {args.chains} chains x {args.samples} samples "
        f"({args.executor}): {total:.2f} s chain time, "
        f"longest chain {longest:.2f} s"
    )
    if any(r.stopped_early for r in results):
        kept = [r.n_kept for r in results]
        print(
            f"early stop: split R-hat converged below "
            f"{args.early_stop_rhat}; chains kept {kept} draws"
        )
    from repro.eval.diagnostics import rhat_report

    # Early-stopped chains can hold unequal draw counts; cross-chain
    # reports use the common prefix.
    report_results = results
    min_kept = min(r.n_kept for r in results)
    if any(r.n_kept != min_kept for r in results) and min_kept > 0:
        report_results = [
            {name: vals[:min_kept] for name, vals in r.samples.items()}
            for r in results
        ]
    for name in collect or sampler.param_names:
        print(rhat_report(report_results, name))
    if args.stats:
        from repro.telemetry.stats import acceptance_ranges, stack_chain_stats

        merged = stack_chain_stats(results)
        if merged:
            print("sample stats (cross-chain per-sweep means):")
            for key in sorted(merged):
                vals = np.asarray(merged[key], dtype=np.float64)
                print(f"  {key:32s} mean {np.nanmean(vals):10.4f}")
        ranges = acceptance_ranges(results)
        if ranges:
            print("acceptance rates (per sweep, all chains):")
            for label, (lo, hi, mean) in sorted(ranges.items()):
                print(
                    f"  {label:32s} mean {mean:.3f} "
                    f"(range {lo:.3f}-{hi:.3f})"
                )
    if monitor is not None:
        print(monitor.report())
    if args.profile and results and results[0].profile is not None:
        print(results[0].profile.table(sampler.source_map))
    if args.report:
        from repro.telemetry.report import write_report

        write_report(args.report, sampler, results)
        print(f"wrote inference report to {args.report}")
    if args.out:
        save_chain_draws(args.out, results)
        print(f"wrote draws to {args.out}")
    if args.trace:
        _write_pipeline_trace(args.trace)
    return 0


def cmd_inspect(args) -> int:
    source, sampler = _build(args)
    print("schedule:", sampler.schedule_description())
    print()
    print(sampler.plan.describe())
    if args.explain:
        print()
        print(sampler.explain())
        print()
        _print_tournament(sampler)
    if args.source:
        print()
        print(sampler.source)
    return 0


def cmd_report(args) -> int:
    """Compile, run with profiling + stats on, and write the HTML
    inference report (plus its JSON twin)."""
    from repro.telemetry.report import write_report

    _, sampler = _build(args)
    warmup = _resolve_warmup(args, sampler)
    result = sampler.sample(
        num_samples=args.samples,
        burn_in=args.burn_in,
        thin=args.thin,
        seed=args.seed,
        collect_stats=True,
        profile=True,
        warmup=warmup,
        target_accept=args.target_accept,
    )
    data = write_report(args.out, sampler, [result])
    print(
        f"wrote inference report to {args.out} "
        f"({len(data['ledger'])} ledger entries, "
        f"{len(data['profiles'])} profile table(s))"
    )
    return 0


def cmd_serve(args) -> int:
    """Run the long-lived inference service (see docs/serving.md)."""
    from repro.serve.server import ReproServer
    from repro.serve.session import InferenceService

    service = InferenceService(
        checkpoint_dir=args.checkpoint_dir,
        artifact_dir=args.artifact_dir,
        divergence_warn=args.divergence_warn,
    )
    server = ReproServer(
        host=args.host,
        port=args.port,
        service=service,
        max_workers=args.request_workers,
        log_path=args.log_json,
        log_level=args.log_level,
    )

    def announce(srv):
        # Machine-readable first line: the CI smoke harness (and shell
        # scripts) read the bound port from it, so keep it stable.
        print(f"serving on http://{srv.host}:{srv.port}", flush=True)
        if args.checkpoint_dir:
            print(f"checkpoints: {args.checkpoint_dir}", flush=True)
        if args.artifact_dir:
            print(f"report artifacts: {args.artifact_dir}", flush=True)
        if args.log_json:
            print(f"event log: {args.log_json}", flush=True)

    try:
        server.run(announce=announce)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_request(args) -> int:
    """Send one inference request to a running ``repro serve``."""
    import http.client
    import urllib.parse

    with open(args.model) as f:
        source = f.read()
    with open(args.inputs) as f:
        raw = json.load(f)
    if not isinstance(raw, dict):
        raise ReproError("the inputs file must hold an object at top level")

    query: dict = {
        "samples": args.samples,
        "burn_in": args.burn_in,
        "thin": args.thin,
        "chains": args.chains,
        "seed": args.seed,
        "executor": args.executor,
    }
    if args.collect:
        query["collect"] = args.collect.split(",")
    if args.chunk_size is not None:
        query["chunk_size"] = args.chunk_size
    if args.warmup is not None:
        query["warmup"] = args.warmup
    if args.target_accept is not None:
        query["target_accept"] = args.target_accept
    budget: dict = {}
    if args.deadline is not None:
        budget["deadline_s"] = args.deadline
    if args.max_draws is not None:
        budget["max_draws"] = args.max_draws
    if args.target_rhat is not None:
        budget["target_rhat"] = args.target_rhat
    if args.schedule:
        query["schedule"] = args.schedule
    if args.tune:
        query["tune"] = True
    payload: dict = {
        "model_source": source,
        "data": raw,
        "query": query,
        "budget": budget,
        "resume": not args.no_resume,
        "return_draws": args.return_draws,
    }
    if args.request_id:
        payload["request_id"] = args.request_id

    parsed = urllib.parse.urlparse(args.url)
    if parsed.scheme not in ("http", ""):
        raise ReproError(f"unsupported URL scheme {parsed.scheme!r}")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    conn = http.client.HTTPConnection(host, port, timeout=args.timeout)
    try:
        conn.request(
            "POST", "/v1/infer", body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        http_resp = conn.getresponse()
        body = http_resp.read()
    finally:
        conn.close()
    try:
        response = json.loads(body)
    except json.JSONDecodeError:
        raise ReproError(
            f"server returned non-JSON ({http_resp.status}): {body[:200]!r}"
        )
    if http_resp.status != 200 or response.get("status") != "ok":
        raise ReproError(
            f"request failed ({http_resp.status}): "
            f"{response.get('error', body[:200])}"
        )

    draws = response.get("draws", {})
    print(
        f"verdict: {response.get('verdict')}  "
        f"complete: {response.get('complete')}  "
        f"stop: {response.get('stop_reason') or 'all draws taken'}"
    )
    print(
        f"draws: kept {draws.get('kept')} of {draws.get('requested')} "
        f"requested ({draws.get('new')} new this call)"
    )
    cache = response.get("cache", {})
    timing = response.get("timing", {})
    print(
        f"compile cache hit: {cache.get('compile_cache_hit')}; "
        f"compile {timing.get('compile_s', 0.0)*1e3:.1f} ms, "
        f"sampling {timing.get('sampling_s', 0.0):.2f} s"
    )
    tuning = response.get("tuning")
    if tuning:
        margin = tuning.get("margin")
        print(
            f"tuning cache {tuning.get('cache')}; "
            f"winner schedule: {tuning.get('schedule')}"
            + (f" ({margin:+.1%} vs. baseline)" if margin else "")
        )
    if response.get("checkpointed"):
        print(
            "checkpointed: rerun the same request id to continue "
            "where it stopped"
        )
    for name, entry in response.get("summary", {}).items():
        for comp, vals in entry.get("components", {}).items():
            rhat = vals.get("rhat")
            rhat_s = f"  rhat {rhat:.4f}" if rhat is not None else ""
            print(
                f"  {comp:24s} mean {vals['mean']:10.4f} "
                f"std {vals['std']:9.4f}{rhat_s}"
            )
    if args.fetch_report:
        conn = http.client.HTTPConnection(host, port, timeout=args.timeout)
        try:
            rid = payload.get("request_id")
            if not rid:
                raise ReproError("--fetch-report needs --request-id")
            conn.request("GET", f"/v1/report/{urllib.parse.quote(rid)}")
            rep = conn.getresponse()
            data = rep.read()
        finally:
            conn.close()
        if rep.status != 200:
            raise ReproError(f"report fetch failed ({rep.status})")
        with open(args.fetch_report, "wb") as f:
            f.write(data)
        print(f"wrote report artifact to {args.fetch_report}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(response, f, indent=2)
        print(f"wrote full response to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AugurV2-style MCMC compilation from the command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("model", help="path to the model source file")
        p.add_argument("inputs", help=".json or .npz with hypers + data")
        p.add_argument("--schedule", default=None, help="user MCMC schedule")
        p.add_argument("--target", default="cpu", choices=["cpu", "gpu"])
        p.add_argument(
            "--tune",
            action="store_true",
            help="autotune the schedule: trial-sweep tournament around the "
            "heuristic (or --schedule), compile the measured winner; "
            "verdicts are cached by model shape",
        )

    ps = sub.add_parser("sample", help="compile and draw posterior samples")
    common(ps)
    ps.add_argument("--samples", type=int, default=1000)
    ps.add_argument("--burn-in", type=int, default=0)
    ps.add_argument("--thin", type=int, default=1)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="adaptation sweeps before burn-in (dual-averaging step size "
        "+ mass matrix for HMC/NUTS); defaults on for HMC/NUTS "
        "schedules without a pinned step size, 0 otherwise",
    )
    ps.add_argument(
        "--target-accept", type=float, default=0.8, metavar="A",
        help="dual-averaging acceptance target (default 0.8)",
    )
    ps.add_argument("--collect", default=None, help="comma-separated parameters")
    ps.add_argument("--chains", type=int, default=1, help="number of chains")
    ps.add_argument(
        "--executor",
        default="processes",
        choices=["sequential", "processes", "threads"],
        help="how multi-chain runs fan out (with --chains > 1)",
    )
    ps.add_argument(
        "--workers", type=int, default=None, help="worker pool size for --chains"
    )
    ps.add_argument(
        "--stream",
        action="store_true",
        help="stream per-chain draw chunks to stderr as workers post them",
    )
    ps.add_argument(
        "--early-stop-rhat",
        type=float,
        default=None,
        metavar="R",
        help="stop all chains once the worst split R-hat falls below R",
    )
    ps.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="kept draws per streamed chunk (with --chains > 1)",
    )
    ps.add_argument("--out", default=None, help="write draws to this .npz")
    ps.add_argument("--summary", action="store_true", help="print posterior summary")
    ps.add_argument(
        "--stats",
        action="store_true",
        help="collect per-sweep sampler statistics and print a summary",
    )
    ps.add_argument(
        "--monitor",
        action="store_true",
        help="online convergence monitoring for multi-chain runs",
    )
    ps.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a chrome://tracing JSON of the compile + run pipeline",
    )
    ps.add_argument(
        "--trace-plot", default=None, help="ASCII trace plot of a parameter"
    )
    ps.add_argument(
        "--profile",
        action="store_true",
        help="attribute sweep wall-time per update / decl / model statement",
    )
    ps.add_argument(
        "--explain",
        action="store_true",
        help="print the compiler decision ledger (what was chosen and why)",
    )
    ps.add_argument(
        "--explain-json",
        default=None,
        metavar="FILE",
        help="write the decision ledger as JSON",
    )
    ps.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write a self-contained HTML inference report (+ .json twin)",
    )
    ps.add_argument(
        "--log-json",
        default=None,
        metavar="FILE",
        help="append structured JSON-lines events (all levels) to FILE",
    )
    ps.add_argument(
        "--divergence-warn",
        type=float,
        default=0.05,
        metavar="RATE",
        help="divergence-rate threshold for the single WARNING line "
        "(default 0.05)",
    )
    ps.set_defaults(fn=cmd_sample)

    pi = sub.add_parser("inspect", help="show the compiled sampler's plan")
    common(pi)
    pi.add_argument("--source", action="store_true", help="print generated code")
    pi.add_argument(
        "--explain",
        action="store_true",
        help="print the compiler decision ledger",
    )
    pi.set_defaults(fn=cmd_inspect)

    pr = sub.add_parser(
        "report",
        help="run with profiling on and write the HTML inference report",
    )
    common(pr)
    pr.add_argument("--samples", type=int, default=500)
    pr.add_argument("--burn-in", type=int, default=0)
    pr.add_argument("--thin", type=int, default=1)
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="adaptation sweeps (defaults on for HMC/NUTS schedules "
        "without a pinned step size)",
    )
    pr.add_argument(
        "--target-accept", type=float, default=0.8, metavar="A",
        help="dual-averaging acceptance target (default 0.8)",
    )
    pr.add_argument(
        "--out", default="report.html", help="report path (default report.html)"
    )
    pr.set_defaults(fn=cmd_report)

    pv = sub.add_parser(
        "serve",
        help="run the long-lived inference service (HTTP + JSON)",
    )
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 binds an ephemeral port, announced on stdout)",
    )
    pv.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for request checkpoints (enables resume)",
    )
    pv.add_argument(
        "--artifact-dir", default=None,
        help="directory for per-request HTML/JSON reports",
    )
    pv.add_argument(
        "--request-workers", type=int, default=4,
        help="concurrent requests handled by the thread pool",
    )
    pv.add_argument(
        "--log-json", default=None, metavar="FILE",
        help="append the structured JSON-lines event log to FILE",
    )
    pv.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="minimum level kept in the event log (default info)",
    )
    pv.add_argument(
        "--divergence-warn", type=float, default=0.05, metavar="RATE",
        help="per-request divergence-rate threshold: one WARNING event "
        "and a flight-recorder dump when crossed (default 0.05)",
    )
    pv.set_defaults(fn=cmd_serve)

    pq = sub.add_parser(
        "request",
        help="send one inference request to a running 'repro serve'",
    )
    pq.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8080")
    pq.add_argument("model", help="path to the model source file")
    pq.add_argument("inputs", help=".json with hypers + data")
    pq.add_argument("--schedule", default=None, help="user MCMC schedule")
    pq.add_argument(
        "--tune", action="store_true",
        help="ask the service to autotune the schedule (verdicts cached "
        "server-side by model shape)",
    )
    pq.add_argument("--samples", type=int, default=500)
    pq.add_argument("--burn-in", type=int, default=0)
    pq.add_argument("--thin", type=int, default=1)
    pq.add_argument("--chains", type=int, default=1)
    pq.add_argument("--seed", type=int, default=0)
    pq.add_argument(
        "--warmup", type=int, default=None, metavar="N",
        help="adaptation sweeps before burn-in (HMC/NUTS)",
    )
    pq.add_argument(
        "--target-accept", type=float, default=None, metavar="A",
        help="dual-averaging acceptance target (default 0.8)",
    )
    pq.add_argument("--collect", default=None, help="comma-separated parameters")
    pq.add_argument(
        "--executor", default="sequential",
        choices=["sequential", "processes", "threads"],
    )
    pq.add_argument("--chunk-size", type=int, default=None, metavar="N")
    pq.add_argument(
        "--request-id", default=None,
        help="stable id enabling checkpoint/resume across calls",
    )
    pq.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; partial results checkpoint for resume",
    )
    pq.add_argument(
        "--max-draws", type=int, default=None, metavar="N",
        help="cap on new kept draws this call",
    )
    pq.add_argument(
        "--target-rhat", type=float, default=None, metavar="R",
        help="stop early once the worst split R-hat falls below R",
    )
    pq.add_argument(
        "--no-resume", action="store_true",
        help="ignore any existing checkpoint for this request id",
    )
    pq.add_argument(
        "--return-draws", action="store_true",
        help="embed the raw draws in the JSON response",
    )
    pq.add_argument(
        "--fetch-report", default=None, metavar="PATH",
        help="download the request's HTML report artifact to PATH",
    )
    pq.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the full JSON response to PATH",
    )
    pq.add_argument("--timeout", type=float, default=600.0)
    pq.set_defaults(fn=cmd_request)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
