"""Fused-gradient + flat-state HMC/NUTS throughput on hierarchical LR.

The baseline path (``fuse_gradient=False, flat_state=False``) runs each
gradient-based sweep with separate compiled log-density and gradient
calls over dict-of-arrays states; the standalone adjoint function
re-derives the forward pass (the sigmoid of the linear predictor) for
every partial.  The fused path (PR 4 defaults) emits one
``ll_grad_<block>`` declaration whose CSE'd body evaluates the forward
pass once per call, integrates on a packed flat state vector with
in-place whole-vector leapfrog, and serves every NUTS leaf with a
single compiled evaluation instead of three.

Results land in ``BENCH_hmc_gradient.json`` at the repository root.
Acceptance: the combined HMC+NUTS sweep time must improve by at least
``MIN_SPEEDUP_COMBINED`` (the PR's >=2x throughput target), with
per-schedule regression floors on HMC and NUTS individually.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.eval.datasets import german_credit_like
from repro.eval.experiments.common import format_table
from repro.eval.experiments.hlr import _hlr_inputs
from repro.eval.metrics import ess_bulk
from repro.runtime.rng import Rng

FULL = os.environ.get("REPRO_FULL") == "1"
N, D = (8000, 64) if FULL else (4000, 48)
HMC_SWEEPS = 30 if FULL else 15
NUTS_SWEEPS = 16 if FULL else 8

MIN_SPEEDUP_COMBINED = 2.0
MIN_SPEEDUP_HMC = 1.5
MIN_SPEEDUP_NUTS = 2.0

# Adaptive-warmup comparison: NUTS with no user step size (dual
# averaging + mass-matrix warmup) must reach at least this fraction of
# the hand-tuned schedule's bulk-ESS per second, warmup time included.
ADAPT_WARMUP = 200 if FULL else 150
ESS_SAMPLES = 150 if FULL else 100
MIN_ADAPTED_ESS_FRACTION = 0.5

RESULTS_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_hmc_gradient.json"
)

SCHEDULES = {
    "HMC": ("HMC[steps=10, step_size=0.005] (sigma2, b, theta)", HMC_SWEEPS),
    "NUTS": ("NUTS[step_size=0.005] (sigma2, b, theta)", NUTS_SWEEPS),
}


def _per_sweep_seconds(hypers, observed, schedule, sweeps, **opts) -> float:
    options = CompileOptions(**opts) if opts else None
    sampler = compile_model(
        models.HLR, hypers, observed, schedule=schedule, options=options
    )
    rng = Rng(7)
    state = sampler.init_state(rng)
    for _ in range(3):  # warm up caches and allocators
        sampler.step(state, rng)
    t0 = time.perf_counter()
    for _ in range(sweeps):
        sampler.step(state, rng)
    return (time.perf_counter() - t0) / sweeps


def test_fused_gradient_speedup(report):
    data = german_credit_like(n=N, d=D)
    hypers, observed = _hlr_inputs(data)

    results = {}
    for label, (schedule, sweeps) in SCHEDULES.items():
        base = _per_sweep_seconds(
            hypers, observed, schedule, sweeps,
            fuse_gradient=False, flat_state=False,
        )
        fused = _per_sweep_seconds(hypers, observed, schedule, sweeps)
        results[label] = {
            "baseline_s_per_sweep": base,
            "fused_s_per_sweep": fused,
            "speedup": base / fused,
            "sweeps": sweeps,
        }

    base_total = sum(r["baseline_s_per_sweep"] for r in results.values())
    fused_total = sum(r["fused_s_per_sweep"] for r in results.values())
    combined = base_total / fused_total

    report(
        f"Fused ll+grad / flat-state HMC & NUTS -- HLR n={N} d={D}",
        format_table(
            ["schedule", "baseline s/sweep", "fused s/sweep", "speedup"],
            [
                [label,
                 f"{r['baseline_s_per_sweep']:.4f}",
                 f"{r['fused_s_per_sweep']:.4f}",
                 f"{r['speedup']:.2f}x"]
                for label, r in results.items()
            ] + [["combined", f"{base_total:.4f}", f"{fused_total:.4f}",
                  f"{combined:.2f}x"]],
        ),
    )

    payload = {
        "n": N,
        "d": D,
        "schedules": results,
        "combined_speedup": combined,
        "min_speedup_combined": MIN_SPEEDUP_COMBINED,
        "min_speedup_hmc": MIN_SPEEDUP_HMC,
        "min_speedup_nuts": MIN_SPEEDUP_NUTS,
    }
    # Preserve the adaptive-warmup section the other test owns.
    if RESULTS_JSON.exists():
        try:
            prior = json.loads(RESULTS_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            prior = {}
        if "adaptive" in prior:
            payload["adaptive"] = prior["adaptive"]
    RESULTS_JSON.write_text(json.dumps(payload, indent=2))

    assert combined >= MIN_SPEEDUP_COMBINED, (
        f"fused HMC+NUTS only {combined:.2f}x faster "
        f"(required {MIN_SPEEDUP_COMBINED}x)"
    )
    assert results["HMC"]["speedup"] >= MIN_SPEEDUP_HMC, (
        f"fused HMC only {results['HMC']['speedup']:.2f}x faster "
        f"(required {MIN_SPEEDUP_HMC}x)"
    )
    assert results["NUTS"]["speedup"] >= MIN_SPEEDUP_NUTS, (
        f"fused NUTS only {results['NUTS']['speedup']:.2f}x faster "
        f"(required {MIN_SPEEDUP_NUTS}x)"
    )


def _ess_run(hypers, observed, schedule: str, warmup: int) -> dict:
    """One end-to-end NUTS run; returns bulk-ESS/s plus the adaptation
    telemetry the CI regression gate reads (leapfrogs per kept draw,
    final step size)."""
    sampler = compile_model(models.HLR, hypers, observed, schedule=schedule)
    result = sampler.sample(
        num_samples=ESS_SAMPLES,
        seed=11,
        collect=("theta",),
        collect_stats=True,
        warmup=warmup,
    )
    draws = np.asarray(result.samples["theta"], dtype=np.float64)
    ess = float(
        np.mean([ess_bulk(draws[None, :, i]) for i in range(draws.shape[1])])
    )
    label = result.stats.update_labels[0]
    cols = result.stats[label]
    kept = cols["n_leapfrog"][result.stats.kept_slice]
    return {
        "schedule": schedule,
        "warmup": warmup,
        "samples": ESS_SAMPLES,
        "ess_bulk_mean": ess,
        "wall_s": float(result.wall_time),
        "ess_per_s": ess / max(float(result.wall_time), 1e-9),
        "leapfrogs_per_draw": float(np.mean(kept)),
        "step_size": float(cols["step_size"][-1]),
    }


def test_adaptive_warmup_ess(report):
    data = german_credit_like(n=N, d=D)
    hypers, observed = _hlr_inputs(data)

    hand = _ess_run(
        hypers, observed, "NUTS[step_size=0.005] (sigma2, b, theta)", warmup=0
    )
    adapted = _ess_run(
        hypers, observed, "NUTS (sigma2, b, theta)", warmup=ADAPT_WARMUP
    )
    fraction = adapted["ess_per_s"] / max(hand["ess_per_s"], 1e-12)

    report(
        f"Adaptive warmup vs hand-tuned NUTS -- HLR n={N} d={D}",
        format_table(
            ["run", "ESS/s", "bulk ESS", "wall s", "leapfrogs/draw", "step"],
            [
                [name,
                 f"{r['ess_per_s']:.1f}",
                 f"{r['ess_bulk_mean']:.1f}",
                 f"{r['wall_s']:.2f}",
                 f"{r['leapfrogs_per_draw']:.1f}",
                 f"{r['step_size']:.4g}"]
                for name, r in [("hand-tuned", hand), ("adapted", adapted)]
            ] + [["adapted/hand-tuned", f"{fraction:.2f}x", "", "", "", ""]],
        ),
    )

    # Merge into the recorded results instead of overwriting: the fused
    # throughput test owns the rest of the file.
    recorded = {}
    if RESULTS_JSON.exists():
        recorded = json.loads(RESULTS_JSON.read_text())
    recorded["adaptive"] = {
        "hand_tuned": hand,
        "adapted": adapted,
        "ess_fraction": fraction,
        "min_ess_fraction": MIN_ADAPTED_ESS_FRACTION,
    }
    RESULTS_JSON.write_text(json.dumps(recorded, indent=2))

    assert fraction >= MIN_ADAPTED_ESS_FRACTION, (
        f"adapted NUTS reaches only {fraction:.2f}x of the hand-tuned "
        f"ESS/s (required {MIN_ADAPTED_ESS_FRACTION}x)"
    )
