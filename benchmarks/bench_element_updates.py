"""Element-parallel update throughput: batched vs scalar drivers.

The scalar element drivers pay two compiled conditional evaluations
plus Python loop overhead *per element per sweep*; the batched drivers
(PR 3) advance every lane with a handful of whole-vector calls against
the scatter-accumulated ``batch_cond_ll`` declaration.  This benchmark
measures per-sweep wall time and elements/second for both paths on a
model with ``N_ELEMENTS`` element-wise updates, for each of MH, Slice,
and ESlice.

Results land in ``BENCH_element_updates.json`` at the repository root.
The acceptance assertion is on the MH path: the batched driver must be
at least ``MIN_SPEEDUP``x faster per sweep than the scalar driver.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval.experiments.common import format_table
from repro.runtime.rng import Rng

FULL = os.environ.get("REPRO_FULL") == "1"
N_ELEMENTS = 8000 if FULL else 2000
SCALAR_SWEEPS = 20 if FULL else 8
BATCHED_SWEEPS = 400 if FULL else 150
MIN_SPEEDUP = 5.0
RESULTS_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_element_updates.json"
)

MODEL = """
(N, v0, v) => {
  param mu[n] ~ Normal(0.0, v0) for n <- 0 until N ;
  data y[n] ~ Normal(mu[n], v) for n <- 0 until N ;
}
"""


def _sampler(batched: bool):
    rng = np.random.default_rng(0)
    hypers = {"N": N_ELEMENTS, "v0": 4.0, "v": 1.0}
    data = {"y": rng.normal(loc=1.0, size=N_ELEMENTS)}
    options = CompileOptions(batch_elements=batched)
    return compile_model(MODEL, hypers, data, schedule="MH mu", options=options)


def _per_sweep_seconds(sampler, sweeps: int) -> float:
    rng = Rng(7)
    state = sampler.init_state(rng)
    for _ in range(3):  # warm up allocator and caches
        sampler.step(state, rng)
    t0 = time.perf_counter()
    for _ in range(sweeps):
        sampler.step(state, rng)
    return (time.perf_counter() - t0) / sweeps


def test_batched_element_updates_speedup(report):
    scalar = _sampler(batched=False)
    batched = _sampler(batched=True)
    (upd_s,) = scalar.updates
    (upd_b,) = batched.updates
    assert not upd_s.is_batched
    assert upd_b.is_batched

    scalar_s = _per_sweep_seconds(scalar, SCALAR_SWEEPS)
    batched_s = _per_sweep_seconds(batched, BATCHED_SWEEPS)
    speedup = scalar_s / batched_s

    def _eps(per_sweep: float) -> float:
        return N_ELEMENTS / per_sweep

    report(
        f"Element-parallel MH -- {N_ELEMENTS} element updates per sweep",
        format_table(
            ["driver", "s/sweep", "elements/s", "speedup"],
            [
                ["scalar MHDriver", f"{scalar_s:.4f}",
                 f"{_eps(scalar_s):,.0f}", "baseline"],
                ["VectorizedMHDriver", f"{batched_s:.4f}",
                 f"{_eps(batched_s):,.0f}", f"{speedup:.1f}x"],
            ],
        ),
    )

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "n_elements": N_ELEMENTS,
                "scalar_sweeps": SCALAR_SWEEPS,
                "batched_sweeps": BATCHED_SWEEPS,
                "scalar_s_per_sweep": scalar_s,
                "batched_s_per_sweep": batched_s,
                "scalar_elements_per_s": _eps(scalar_s),
                "batched_elements_per_s": _eps(batched_s),
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
            },
            indent=2,
        )
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched MH only {speedup:.1f}x faster than scalar "
        f"(required {MIN_SPEEDUP}x)"
    )
