"""Section 7.2 HLR GPU observations.

Two paper claims:

1. German Credit (small): "the computational performance was roughly an
   order of magnitude worse [on GPU] ... attributed to the small dataset
   size and the low dimensionality" -- reproduced as launch overhead
   dominating the device time on the small dataset.
2. Adult (50000 x 14): "the gradients were parallelized differently due
   to the summation block optimization -- it is more efficient to run 14
   map-reduces over 50000 elements as opposed to launching 50000 threads
   all contending to increment 14 locations" -- reproduced as a large
   device-time gap between conversion on and off.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.common import format_table
from repro.eval.experiments.hlr import run_hlr_gpu


@pytest.fixture(scope="module")
def gpu_rows():
    return run_hlr_gpu()


def test_hlr_gpu(gpu_rows, report, benchmark):
    rows = [
        [
            r.dataset,
            r.n,
            f"{r.gpu_seconds:.5f}",
            f"{r.gpu_seconds_no_sumblk:.5f}",
            f"~{r.sumblk_speedup:.1f}x",
            f"{r.launch_overhead_fraction:.0%}",
        ]
        for r in gpu_rows
    ]
    report(
        "HLR on the simulated GPU",
        format_table(
            [
                "dataset", "n", "GPU s (sumBlk on)", "GPU s (off)",
                "sumBlk speedup", "launch overhead",
            ],
            rows,
        ),
    )
    small = next(r for r in gpu_rows if "german" in r.dataset)
    big = next(r for r in gpu_rows if "adult" in r.dataset)
    # Claim 1: launches dominate the small problem, not the big one.
    assert small.launch_overhead_fraction > 0.5
    assert big.launch_overhead_fraction < small.launch_overhead_fraction
    # Claim 2: the summation-block conversion matters at Adult scale.
    assert big.sumblk_speedup > 3.0
    assert big.sumblk_speedup > small.sumblk_speedup

    benchmark.pedantic(lambda: run_hlr_gpu(sweeps=3), rounds=1, iterations=1)
