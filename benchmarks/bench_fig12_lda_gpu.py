"""Figure 12: LDA Gibbs, CPU vs. simulated GPU, across corpora/topics.

Paper speedups: Kos 2.7x -> 4.6x and Nips 3.1x -> 5.8x as topics grow
from 50 to 150; "the GPU provides more benefit on larger datasets, with
larger vocabulary sizes, and with more topics".
"""

from __future__ import annotations

import pytest

from repro.eval.datasets import kos_like
from repro.eval.experiments.common import format_table, full_scale
from repro.eval.experiments.fig12 import run_corpus_config, run_fig12

PAPER = {
    ("Kos", 50): 2.7, ("Kos", 100): 3.6, ("Kos", 150): 4.6,
    ("Nips", 50): 3.1, ("Nips", 100): 5.2, ("Nips", 150): 5.8,
}


@pytest.fixture(scope="module")
def fig12_rows():
    return run_fig12()


def test_fig12_table(fig12_rows, report, benchmark):
    rows = []
    for r in fig12_rows:
        base = "Kos" if "Kos" in r.corpus else "Nips"
        rows.append(
            [
                r.corpus,
                r.topics,
                r.n_tokens,
                f"{r.cpu_seconds:.2f}",
                f"{r.gpu_seconds:.4f}",
                f"~{r.speedup:.1f}x",
                f"~{PAPER[(base, r.topics)]}x",
            ]
        )
    report(
        "Figure 12 -- LDA CPU vs. simulated GPU Gibbs",
        format_table(
            [
                "corpus", "topics", "tokens", "CPU wall s",
                "GPU sim s", "model speedup", "paper speedup",
            ],
            rows,
        )
        + "\n(GPU seconds are cost-model time; the speedup column compares "
        "the device model against its single-lane CPU pricing -- see "
        "EXPERIMENTS.md for calibration)",
    )

    by_corpus: dict[str, list] = {}
    for r in fig12_rows:
        by_corpus.setdefault("Kos" if "Kos" in r.corpus else "Nips", []).append(r)
    # Trend 1: speedup grows with the number of topics, per corpus.
    for rows_ in by_corpus.values():
        rows_ = sorted(rows_, key=lambda r: r.topics)
        assert rows_[-1].speedup > rows_[0].speedup
    # Trend 2: the larger corpus benefits more at every topic count.
    for k in {r.topics for r in fig12_rows}:
        kos = next(r for r in by_corpus["Kos"] if r.topics == k)
        nips = next(r for r in by_corpus["Nips"] if r.topics == k)
        assert nips.speedup > kos.speedup
    # Magnitudes in the paper's band (within ~2x).
    for r in fig12_rows:
        base = "Kos" if "Kos" in r.corpus else "Nips"
        paper = PAPER[(base, r.topics)]
        assert 0.4 * paper < r.speedup < 2.5 * paper, (r.corpus, r.topics, r.speedup)

    corpus = kos_like(scale=1.0 if full_scale() else 0.004)
    benchmark.pedantic(
        lambda: run_corpus_config(corpus, 50, samples=2), rounds=1, iterations=1
    )
