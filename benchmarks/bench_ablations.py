"""Ablations of the compiler's design choices (DESIGN.md Section 5).

Each row removes one optimisation and measures the cost:

- summation-block conversion (Section 5.4) on the HLR gradient,
- loop commuting (Section 5.4) on the paper's K-threads kernel shape,
- the categorical-indexing rewrite (Section 3.3) on the GMM -- without
  it the means lose their conjugate Gibbs update outright,
- vectorised code generation vs. interpreted loops on the CPU backend.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.ablations import (
    ablate_categorical_rewrite,
    ablate_loop_commuting,
    ablate_sum_block,
    ablate_vectorization,
)
from repro.eval.experiments.common import format_table


@pytest.fixture(scope="module")
def ablation_rows():
    cat_row, gibbs_rejected = ablate_categorical_rewrite()
    return [
        ablate_sum_block(),
        ablate_loop_commuting(),
        cat_row,
        ablate_vectorization(),
    ], gibbs_rejected


def test_ablations(ablation_rows, report, benchmark):
    rows_data, gibbs_rejected = ablation_rows
    rows = [
        [r.name, f"{r.baseline:.5f}", f"{r.ablated:.5f}", r.unit, f"{r.factor:.1f}x"]
        for r in rows_data
    ]
    report(
        "Optimisation ablations",
        format_table(["optimisation", "with", "without", "unit", "cost"], rows)
        + f"\n(categorical rewrite off => Gibbs mu rejected by the "
        f"schedule validator: {gibbs_rejected})",
    )
    by = {r.name: r for r in rows_data}
    assert by["sum-block conversion"].factor > 3.0
    assert by["loop commuting"].factor > 3.0
    assert by["categorical-indexing rewrite"].factor > 1.5
    assert by["vectorised codegen"].factor > 5.0
    assert gibbs_rejected

    benchmark.pedantic(ablate_sum_block, rounds=1, iterations=1)
