"""Chain-level parallelism: wall time vs worker count, plus cache rates.

The paper (Section 7.2) contrasts AugurV2's within-chain parallelism
with the chain-level parallelism of Jags/Stan; this benchmark measures
our multi-chain engine doing the latter.  It runs the Figure-1 GMM with
``executor="processes"`` at 1/2/4 workers against the sequential
baseline, measures the compile cache cold/warm, and records everything
to ``BENCH_chain_scaling.json`` at the repository root -- where CI
picks the ``BENCH_*.json`` files up as artifacts -- plus the usual
table in ``results/latest.txt``.

Each ``processes`` config is run twice: the cold run pays the one-time
warm-pool spawn (fork + per-worker compile), the warm run reuses the
resident workers and shared-memory draw buffers.  The reported speedup
-- and the >= 2x-at-4-workers assertion, which only fires on a host
with at least 4 CPUs -- uses the warm wall; single-core CI still
records the numbers.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.core.chains import get_worker_pool, shutdown_worker_pools
from repro.core.compiler import clear_compile_cache, compile_cache_stats, compile_model
from repro.eval import models
from repro.eval.experiments.common import format_table

FULL = os.environ.get("REPRO_FULL") == "1"
N_CHAINS = 4
NUM_SAMPLES = 400 if FULL else 120
BURN_IN = 50 if FULL else 20
RESULTS_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_chain_scaling.json"


def _gmm_problem(n=300, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-separation, 0.0], [separation, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5),
        "Sigma": np.eye(2) * 0.25,
    }
    return hypers, {"x": x}


@pytest.fixture(scope="module")
def scaling_rows():
    hypers, data = _gmm_problem(n=600 if FULL else 300)

    clear_compile_cache()
    t0 = time.perf_counter()
    sampler = compile_model(models.GMM, hypers, data)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    compile_model(models.GMM, hypers, data)
    warm_s = time.perf_counter() - t0
    stats = compile_cache_stats()
    cache = {
        "cold_compile_s": cold_s,
        "warm_compile_s": warm_s,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": stats.hit_rate,
    }

    rows = []
    configs = [("sequential", None), ("processes", 1), ("processes", 2), ("processes", 4)]
    for executor, n_workers in configs:
        walls = []
        pids = []
        # Cold run spawns + compiles the pool workers; warm run reuses
        # them.  The sequential baseline has no pool, so run it once.
        n_runs = 1 if executor == "sequential" else 2
        for _ in range(n_runs):
            t0 = time.perf_counter()
            results = sampler.sample_chains(
                N_CHAINS,
                num_samples=NUM_SAMPLES,
                burn_in=BURN_IN,
                seed=7,
                executor=executor,
                n_workers=n_workers,
            )
            walls.append(time.perf_counter() - t0)
            if executor == "processes":
                pids.append(get_worker_pool(sampler.spec, n_workers or 1).pids())
        rows.append(
            {
                "executor": executor,
                "n_workers": n_workers,
                "cold_wall_s": walls[0],
                "wall_s": walls[-1],
                "chain_s": sum(r.wall_time for r in results),
                "pool_reused": len(pids) == 2 and pids[0] == pids[1],
            }
        )
    shutdown_worker_pools()
    return rows, cache


def test_chain_scaling(scaling_rows, report):
    rows, cache = scaling_rows
    baseline = rows[0]["wall_s"]
    table_rows = [
        [
            r["executor"],
            str(r["n_workers"] or "-"),
            f"{r['cold_wall_s']:.2f}",
            f"{r['wall_s']:.2f}",
            f"{baseline / r['wall_s']:.2f}x",
        ]
        for r in rows
    ]
    report(
        f"Chain scaling -- GMM, {N_CHAINS} chains x {NUM_SAMPLES} samples "
        f"({os.cpu_count()} CPUs; warm wall reuses the resident pool)",
        format_table(
            ["executor", "workers", "cold s", "warm s", "speedup"], table_rows
        )
        + f"\ncompile cache: cold {cache['cold_compile_s']*1e3:.1f} ms, "
        f"warm {cache['warm_compile_s']*1e3:.1f} ms, "
        f"hit rate {cache['hit_rate']:.2f}",
    )

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "host_cpus": os.cpu_count(),
                "n_chains": N_CHAINS,
                "num_samples": NUM_SAMPLES,
                "burn_in": BURN_IN,
                "rows": rows,
                "compile_cache": cache,
            },
            indent=2,
        )
    )

    # A warm compile skips the whole pipeline: it must beat cold handily.
    assert cache["hits"] == 1 and cache["misses"] == 1
    assert cache["warm_compile_s"] < cache["cold_compile_s"]
    # The warm run must have hit the same resident workers, not respawned.
    assert all(r["pool_reused"] for r in rows if r["executor"] == "processes")
    if (os.cpu_count() or 1) >= 4:
        four = next(r for r in rows if r["n_workers"] == 4)
        assert baseline / four["wall_s"] >= 2.0


def test_parallel_chains_match_sequential(report):
    """The engine's determinism contract, at benchmark scale."""
    hypers, data = _gmm_problem(n=120)
    sampler = compile_model(models.GMM, hypers, data)
    seq = sampler.sample_chains(2, num_samples=30, seed=3)
    par = sampler.sample_chains(2, num_samples=30, seed=3, executor="processes")
    streamed = sampler.stream_chains(
        2, num_samples=30, seed=3, executor="processes", chunk_size=8
    ).drain()
    for a, b, c in zip(seq, par, streamed):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))
        np.testing.assert_array_equal(a.array("z"), b.array("z"))
        np.testing.assert_array_equal(a.array("mu"), c.array("mu"))
        np.testing.assert_array_equal(a.array("z"), c.array("z"))
    report(
        "Chain determinism",
        "processes == sequential == streamed: bitwise identical",
    )
