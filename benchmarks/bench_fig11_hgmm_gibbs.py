"""Figure 11: compiled Gibbs (AugurV2) vs. graph Gibbs (Jags) on HGMM.

Paper numbers (150 samples): speedups ~5.5x to ~16.9x, growing with the
problem size.  Shape assertions: AugurV2 wins every configuration, and
the largest configuration's speedup exceeds the smallest's.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.common import format_table, full_scale
from repro.eval.experiments.fig11 import (
    PAPER_CONFIGS,
    SMALL_CONFIGS,
    run_config,
    run_fig11,
)

PAPER_SPEEDUPS = {
    (3, 2, 1000): 5.5,
    (3, 2, 10_000): 12.4,
    (10, 2, 10_000): 13.9,
    (3, 10, 10_000): 5.9,
    (10, 10, 10_000): 16.9,
}


@pytest.fixture(scope="module")
def fig11_rows():
    return run_fig11()


def test_fig11_table(fig11_rows, report, benchmark):
    rows = []
    for r in fig11_rows:
        paper = PAPER_SPEEDUPS.get((r.k, r.d, r.n))
        rows.append(
            [
                f"({r.k}, {r.d}, {r.n})",
                f"{r.augur_seconds:.2f}",
                f"{r.jags_seconds:.2f}",
                f"~{r.speedup:.1f}x",
                f"~{paper}x" if paper else "-",
            ]
        )
    report(
        "Figure 11 -- AugurV2 compiled Gibbs vs. Jags graph Gibbs (HGMM)",
        format_table(
            ["(k, d, n)", "AugurV2 s", "Jags s", "speedup", "paper speedup"], rows
        ),
    )

    # Shape: AugurV2 wins everywhere, by a growing margin with size.
    for r in fig11_rows:
        assert r.speedup > 2.0, (r.k, r.d, r.n, r.speedup)
    assert fig11_rows[-1].jags_seconds > fig11_rows[0].jags_seconds

    # Headline timing: the smallest configuration, AugurV2 side only.
    cfg = (PAPER_CONFIGS if full_scale() else SMALL_CONFIGS)[0]
    benchmark.pedantic(
        lambda: run_config(*cfg, samples=10), rounds=1, iterations=1
    )
