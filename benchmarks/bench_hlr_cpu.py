"""Section 7.2 HLR CPU comparison.

Paper: on German Credit, AugurV2's CPU HMC is ~25% slower than Stan's
identical HMC; "Jags had the poorest performance as it defaults to
adaptive rejection sampling".  Reproduced shape: AugurV2 and the
Stan-style engine are the same order of magnitude (we report the
measured ratio), the Jags-style ARS engine is dramatically slower, and
all gradient-based systems reach comparable held-out log likelihood.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.common import format_table
from repro.eval.experiments.hlr import run_hlr_cpu


@pytest.fixture(scope="module")
def hlr_rows():
    return run_hlr_cpu()


def test_hlr_cpu(hlr_rows, report, benchmark):
    rows = [
        [r.system, f"{r.seconds:.2f}", r.samples, f"{r.holdout_logpred:.1f}"]
        for r in hlr_rows
    ]
    by = {r.system: r for r in hlr_rows}
    ratio = by["augurv2-hmc"].seconds / by["stan-nuts"].seconds
    report(
        "HLR on German-Credit-like data (CPU)",
        format_table(["system", "seconds", "samples", "holdout logpred"], rows)
        + f"\nAugurV2/Stan time ratio: {ratio:.2f} (paper: ~1.25)",
    )

    # Same order of magnitude for the gradient-based systems.
    assert 0.1 < ratio < 10.0
    # Jags-style ARS is far slower than either.
    assert by["jags-ars"].seconds > 5 * by["augurv2-hmc"].seconds
    assert by["jags-ars"].seconds > 5 * by["stan-nuts"].seconds
    # The gradient-based systems converge to similar held-out quality.
    assert abs(
        by["augurv2-hmc"].holdout_logpred - by["stan-nuts"].holdout_logpred
    ) < 0.2 * abs(by["stan-nuts"].holdout_logpred)

    benchmark.pedantic(
        lambda: run_hlr_cpu(samples=20), rounds=1, iterations=1
    )
