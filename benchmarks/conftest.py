"""Shared benchmark plumbing.

Every benchmark prints a paper-style table (via ``report``) in addition
to the pytest-benchmark timing stats, and appends it to
``benchmarks/results/latest.txt`` so a full run leaves a readable
record.  Set ``REPRO_FULL=1`` for paper-scale workloads; the defaults
are scaled down to finish on a small machine while preserving the
trends being reproduced.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(capsys):
    """Print a table to the real terminal and log it to the results file."""

    def _report(title: str, body: str) -> None:
        text = f"\n## {title}\n{body}\n"
        with capsys.disabled():
            print(text)
        RESULTS.mkdir(exist_ok=True)
        with open(RESULTS / "latest.txt", "a") as f:
            f.write(text)

    return _report


def pytest_sessionstart(session):
    RESULTS.mkdir(exist_ok=True)
    latest = RESULTS / "latest.txt"
    if latest.exists():
        latest.unlink()
