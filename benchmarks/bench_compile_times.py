"""Section 7.2 compile times: Stan ~35 s vs. AugurV2 ~instant (CPU).

The GPU target's paper figure (~8 s) is Nvcc's; our backend has no
native toolchain, so the GPU row only demonstrates that AugurV2-style
runtime codegen stays near-instant for both targets.  The reproduced
claim is ordinal: Stan-style template-heavy builds cost orders of
magnitude more than AugurV2-style runtime code generation.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments.common import format_table
from repro.eval.experiments.compile_times import run_compile_times


@pytest.fixture(scope="module")
def compile_rows():
    return run_compile_times()


def test_compile_times(compile_rows, report, benchmark):
    rows = [[r.system, f"{r.seconds:.4f}", r.paper_seconds] for r in compile_rows]
    report(
        "Compile times -- HLR model",
        format_table(["system", "measured s", "paper"], rows),
    )
    by = {r.system: r.seconds for r in compile_rows}
    assert by["stan"] > 5 * by["augurv2-cpu"]
    assert by["augurv2-cpu"] < 1.0
    assert by["augurv2-gpu"] < 1.0

    from repro.eval.experiments.compile_times import run_compile_times as rc

    benchmark.pedantic(rc, rounds=1, iterations=1)
