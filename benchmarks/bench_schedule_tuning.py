"""Profile-guided schedule tuning: tuned vs heuristic throughput.

On the grouped-means model the heuristic picks a scalar Gibbs update
for ``mu`` (one conjugate draw per group per sweep, driven from
Python), while the tournament discovers that the batched element-wise
MH twin advances every group in a handful of vector calls.  This
benchmark measures per-sweep wall time for the heuristic schedule and
for the autotuned winner, and checks the shape-keyed verdict cache:
the second ``autotune`` with the same shape fingerprint must skip the
trial sweeps entirely.

Results land in ``BENCH_schedule_tuning.json`` at the repository
root.  The acceptance assertions: the tuned schedule is at least as
fast per sweep as the heuristic one, the tournament actually changed
the schedule, and the repeat tuning call is a cache hit.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.compiler import compile_model
from repro.eval.experiments.common import format_table
from repro.runtime.rng import Rng
from repro.tune import autotune, clear_tuning_cache, tuning_cache_stats

FULL = os.environ.get("REPRO_FULL") == "1"
N_GROUPS = 1500 if FULL else 400
J_OBS = 4
MEASURE_SWEEPS = 40 if FULL else 15
HEURISTIC_SWEEPS = 10 if FULL else 6
RESULTS_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_schedule_tuning.json"
)

MODEL = """
(N, J, v0, v) => {
  param mu[n] ~ Normal(0.0, v0)
    for n <- 0 until N ;
  data y[n][j] ~ Normal(mu[n], v)
    for n <- 0 until N, j <- 0 until J ;
}
"""

HYPERS = {"N": N_GROUPS, "J": J_OBS, "v0": 25.0, "v": 1.0}


def _data():
    rng = np.random.default_rng(0)
    return {"y": rng.normal(1.0, 1.0, size=(N_GROUPS, J_OBS))}


def _per_sweep_seconds(sampler, sweeps: int) -> float:
    rng = Rng(7)
    state = sampler.init_state(rng)
    for _ in range(2):  # warm up allocator and caches
        sampler.step(state, rng)
    t0 = time.perf_counter()
    for _ in range(sweeps):
        sampler.step(state, rng)
    return (time.perf_counter() - t0) / sweeps


def test_tuned_schedule_beats_heuristic(report):
    data = _data()
    heuristic = compile_model(MODEL, HYPERS, data)

    clear_tuning_cache()
    t0 = time.perf_counter()
    tuned = autotune(MODEL, HYPERS, data)
    tuning_s = time.perf_counter() - t0
    assert tuned.tune_report["cache"] == "miss"
    heuristic_schedule = tuned.tune_report["baseline_schedule"]

    t0 = time.perf_counter()
    cached = autotune(MODEL, HYPERS, data)
    cached_s = time.perf_counter() - t0
    cache_hit = cached.tune_report["cache"] == "hit"
    assert cache_hit, "second autotune with the same shapes must hit"
    assert tuning_cache_stats().hits >= 1
    assert cached.spec.schedule == tuned.spec.schedule

    heuristic_s = _per_sweep_seconds(heuristic, HEURISTIC_SWEEPS)
    tuned_s = _per_sweep_seconds(tuned, MEASURE_SWEEPS)
    speedup = heuristic_s / tuned_s

    report(
        f"Schedule tuning -- {N_GROUPS} grouped means, {J_OBS} obs each",
        format_table(
            ["schedule", "s/sweep", "speedup", "tuning s"],
            [
                [heuristic_schedule, f"{heuristic_s:.5f}", "baseline", "-"],
                [tuned.spec.schedule, f"{tuned_s:.5f}",
                 f"{speedup:.1f}x", f"{tuning_s:.2f}"],
                ["(cache hit)", "-", "-", f"{cached_s:.3f}"],
            ],
        ),
    )

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "n_groups": N_GROUPS,
                "j_obs": J_OBS,
                "heuristic_schedule": heuristic_schedule,
                "tuned_schedule": tuned.spec.schedule,
                "heuristic_s_per_sweep": heuristic_s,
                "tuned_s_per_sweep": tuned_s,
                "speedup": speedup,
                "tuning_seconds": tuning_s,
                "cached_tuning_seconds": cached_s,
                "cache_hit": cache_hit,
                "tournament": tuned.tune_report["candidates"],
            },
            indent=2,
        )
    )

    assert tuned.spec.schedule != heuristic_schedule, (
        "the tournament should discover a non-heuristic winner here"
    )
    assert tuned_s <= heuristic_s, (
        f"tuned schedule slower than heuristic: "
        f"{tuned_s:.5f} vs {heuristic_s:.5f} s/sweep"
    )
