"""Figure 10: log-predictive probability vs. training time (HGMM).

Paper shape being reproduced: all five systems converge to roughly the
same log-predictive probability; AugurV2's Gibbs/ESlice/HMC variants
get there in ~1.4 s of training while Stan needs ~7.5-8 s (inset), and
Jags sits in between, slowed by graph interpretation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments.common import format_table, full_scale
from repro.eval.experiments.fig10 import AUGUR_SCHEDULES, run_fig10


@pytest.fixture(scope="module")
def fig10_results():
    if full_scale():
        return run_fig10(n=1000, augur_samples=150, stan_samples=100, stan_warmup=50)
    return run_fig10(n=300, augur_samples=60, stan_samples=40, stan_warmup=25)


def test_fig10_series(fig10_results, report, benchmark):
    results = fig10_results
    rows = []
    for name, series in results.items():
        t_final, lp_final = series.final()
        rows.append(
            [
                name,
                f"{t_final:.2f}",
                f"{lp_final:.1f}",
                f"{series.values[0]:.1f}",
                f"{max(series.values):.1f}",
            ]
        )
    report(
        "Figure 10 -- HGMM log-predictive vs. training time",
        format_table(
            ["system", "train s", "final logpred", "first", "best"], rows
        )
        + "\n(paper: all systems converge to a similar log-predictive; "
        "AugurV2 variants finish within ~1.4 s, Stan needs ~7.5-8 s)",
    )

    # Shape assertions.
    best = {name: max(s.values) for name, s in results.items()}
    finish = {name: s.final()[0] for name, s in results.items()}
    gibbs_best = best["augurv2-gibbs-mu"]
    # Every system reaches within a band of the Gibbs plateau.
    for name, b in best.items():
        assert b > gibbs_best - 0.35 * abs(gibbs_best), (name, b, gibbs_best)
    # AugurV2 variants finish well before Stan and before Jags.
    for name in AUGUR_SCHEDULES:
        assert finish[name] < finish["stan"]
        assert finish[name] < finish["jags"]

    # The headline timing: one full AugurV2 all-Gibbs fit.
    from repro.eval.experiments.fig10 import _augur_series
    from repro.eval.datasets import hgmm_synthetic
    from repro.eval.experiments.common import hgmm_hypers

    data = hgmm_synthetic(k=3, d=2, n=300, seed=0)
    benchmark.pedantic(
        lambda: _augur_series(
            "bench", AUGUR_SCHEDULES["augurv2-gibbs-mu"], data, hgmm_hypers(3, 2), 20, 0
        ),
        rounds=1,
        iterations=1,
    )
