"""Telemetry overhead: stats collection and tracing vs the bare loop.

The telemetry subsystem's contract is that *disabled* instrumentation is
free: the sweep loop pays one ``is None`` check per update when stats
are off and one ``enabled`` check when tracing is off.  This benchmark
measures that contract on the Figure-1 GMM:

- ``off`` vs ``off`` (a second identical run) gives the measurement
  noise floor;
- ``off`` vs ``collect_stats=True`` gives the price of recording every
  update's per-sweep record into the preallocated buffers;
- ``off`` vs tracing-enabled gives the price of the runtime spans
  (which are bulk-emitted after the loop from timing arrays);
- ``off`` vs ``profile=True`` gives the price of the sweep profiler
  (per-update timer brackets plus wrapped per-decl callables).  The
  profiler's *off* path -- the one ``is None`` check per sweep -- is
  part of the bare loop and therefore covered by the off-vs-off
  acceptance number.

Results land in ``BENCH_telemetry_overhead.json`` at the repository
root.  The acceptance assertion is on the *median-of-repeats* off-path
overhead: <= 3% beyond the noise floor.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.compiler import compile_model
from repro.eval import models
from repro.eval.experiments.common import format_table
from repro.telemetry.trace import disable_tracing, enable_tracing, get_tracer

FULL = os.environ.get("REPRO_FULL") == "1"
NUM_SAMPLES = 600 if FULL else 250
REPEATS = 7 if FULL else 5
MAX_OFF_OVERHEAD_PCT = 3.0
RESULTS_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_telemetry_overhead.json"
)


def _gmm_sampler(n=300, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-4.0, 0.0], [4.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5),
        "Sigma": np.eye(2) * 0.25,
    }
    return compile_model(models.GMM, hypers, {"x": x})


def _timed_run(sampler, collect_stats=False, profile=False):
    t0 = time.perf_counter()
    sampler.sample(
        num_samples=NUM_SAMPLES, seed=3,
        collect_stats=collect_stats, profile=profile,
    )
    return time.perf_counter() - t0


def _median(xs):
    return float(np.median(xs))


def test_telemetry_off_overhead_within_budget(report):
    sampler = _gmm_sampler()
    sampler.sample(num_samples=30, seed=0)  # warm up caches / allocator

    # Interleave the variants so drift (thermal, page cache) spreads
    # evenly instead of biasing whichever variant runs last.
    base, base2, stats_on, traced, profiled = [], [], [], [], []
    for _ in range(REPEATS):
        base.append(_timed_run(sampler))
        stats_on.append(_timed_run(sampler, collect_stats=True))
        tracer = enable_tracing()
        traced.append(_timed_run(sampler))
        disable_tracing()
        trace_events = len(tracer.events)
        tracer.reset()
        profiled.append(_timed_run(sampler, profile=True))
        base2.append(_timed_run(sampler))

    off_s, off2_s = _median(base), _median(base2)
    stats_s, trace_s = _median(stats_on), _median(traced)
    profile_s = _median(profiled)
    noise_pct = abs(off2_s - off_s) / off_s * 100.0
    # "Telemetry off" overhead: the armed-but-disabled code paths, i.e.
    # the second off run measured against the first.
    off_overhead_pct = (off2_s - off_s) / off_s * 100.0
    stats_overhead_pct = (stats_s - off_s) / off_s * 100.0
    trace_overhead_pct = (trace_s - off_s) / off_s * 100.0
    profile_overhead_pct = (profile_s - off_s) / off_s * 100.0

    report(
        f"Telemetry overhead -- GMM, {NUM_SAMPLES} sweeps, "
        f"median of {REPEATS}",
        format_table(
            ["variant", "wall s", "overhead"],
            [
                ["telemetry off", f"{off_s:.3f}", "baseline"],
                ["telemetry off (re-run)", f"{off2_s:.3f}",
                 f"{off_overhead_pct:+.2f}%"],
                ["collect_stats=True", f"{stats_s:.3f}",
                 f"{stats_overhead_pct:+.2f}%"],
                ["tracing enabled", f"{trace_s:.3f}",
                 f"{trace_overhead_pct:+.2f}%"],
                ["profile=True", f"{profile_s:.3f}",
                 f"{profile_overhead_pct:+.2f}%"],
            ],
        ),
    )

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "num_samples": NUM_SAMPLES,
                "repeats": REPEATS,
                "telemetry_off_s": off_s,
                "telemetry_off_rerun_s": off2_s,
                "collect_stats_s": stats_s,
                "tracing_s": trace_s,
                "profile_s": profile_s,
                "trace_events_per_run": trace_events,
                # The acceptance number: cost of the disabled telemetry
                # code paths, i.e. run-to-run delta of the off path.
                "telemetry_off_overhead_pct": off_overhead_pct,
                "noise_floor_pct": noise_pct,
                "collect_stats_overhead_pct": stats_overhead_pct,
                "tracing_overhead_pct": trace_overhead_pct,
                # Profiler off-path cost is inside the off-vs-off number
                # (the sweep loop's one `profiler is None` check); this
                # is the on-path price of the timer brackets + wrappers.
                "profile_overhead_pct": profile_overhead_pct,
                "max_off_overhead_pct": MAX_OFF_OVERHEAD_PCT,
            },
            indent=2,
        )
    )

    assert off_overhead_pct <= MAX_OFF_OVERHEAD_PCT, (
        f"telemetry-off path regressed {off_overhead_pct:.2f}% "
        f"(budget {MAX_OFF_OVERHEAD_PCT}%)"
    )
    # Recording itself must stay cheap relative to the generated-code
    # density evaluations that dominate a sweep.
    assert stats_overhead_pct <= 25.0
    # The profiler's on-path brackets are two perf_counter reads per
    # update plus one per wrapped decl call -- cheap, but not free.
    assert profile_overhead_pct <= 50.0
