"""Telemetry overhead: stats collection and tracing vs the bare loop.

The telemetry subsystem's contract is that *disabled* instrumentation is
free: the sweep loop pays one ``is None`` check per update when stats
are off and one ``enabled`` check when tracing is off.  This benchmark
measures that contract on the Figure-1 GMM:

- ``off`` vs ``off`` (a second identical run) gives the measurement
  noise floor;
- ``off`` vs ``collect_stats=True`` gives the price of recording every
  update's per-sweep record into the preallocated buffers;
- ``off`` vs tracing-enabled gives the price of the runtime spans
  (which are bulk-emitted after the loop from timing arrays);
- ``off`` vs ``profile=True`` gives the price of the sweep profiler
  (per-update timer brackets plus wrapped per-decl callables).  The
  profiler's *off* path -- the one ``is None`` check per sweep -- is
  part of the bare loop and therefore covered by the off-vs-off
  acceptance number.
- a streamed run vs the same run with the structured event log armed
  (JSON-lines sink) and a flight recorder fed per chunk gives the
  price of the serve-path observability stack.  Its *off* path -- one
  ``enabled`` check per chunk and per sampling run -- is again part of
  the bare loop, covered by the off-vs-off number.

Results land in ``BENCH_telemetry_overhead.json`` at the repository
root.  The acceptance assertion is on the *median-of-repeats* off-path
overhead: <= 3% beyond the noise floor.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

import numpy as np

from repro.core.compiler import compile_model
from repro.eval import models
from repro.eval.experiments.common import format_table
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.obslog import configure_event_log, get_event_log
from repro.telemetry.trace import disable_tracing, enable_tracing, get_tracer

FULL = os.environ.get("REPRO_FULL") == "1"
NUM_SAMPLES = 600 if FULL else 250
REPEATS = 7 if FULL else 5
MAX_OFF_OVERHEAD_PCT = 3.0
RESULTS_JSON = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_telemetry_overhead.json"
)


def _gmm_sampler(n=300, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-4.0, 0.0], [4.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5),
        "Sigma": np.eye(2) * 0.25,
    }
    return compile_model(models.GMM, hypers, {"x": x})


def _timed_run(sampler, collect_stats=False, profile=False):
    t0 = time.perf_counter()
    sampler.sample(
        num_samples=NUM_SAMPLES, seed=3,
        collect_stats=collect_stats, profile=profile,
    )
    return time.perf_counter() - t0


def _timed_stream_run(sampler, recorder=None):
    """One single-chain streamed run (the serve hot path); with
    ``recorder`` every chunk also feeds the flight recorder, as
    ``InferenceService._handle`` does."""
    t0 = time.perf_counter()
    stream = sampler.stream_chains(
        n_chains=1, num_samples=NUM_SAMPLES, seed=3,
        executor="sequential", collect_stats=True, chunk_size=25,
    )
    for chunk in stream:
        if recorder is not None:
            recorder.record_chunk(chunk)
    return time.perf_counter() - t0


def _median(xs):
    return float(np.median(xs))


def test_telemetry_off_overhead_within_budget(report):
    sampler = _gmm_sampler()
    sampler.sample(num_samples=30, seed=0)  # warm up caches / allocator

    # Interleave the variants so drift (thermal, page cache) spreads
    # evenly instead of biasing whichever variant runs last.
    base, base2, stats_on, traced, profiled = [], [], [], [], []
    stream_base, obs_on = [], []
    with tempfile.TemporaryDirectory() as tmpdir:
        obs_sink = os.path.join(tmpdir, "events.jsonl")
        for _ in range(REPEATS):
            base.append(_timed_run(sampler))
            stats_on.append(_timed_run(sampler, collect_stats=True))
            tracer = enable_tracing()
            traced.append(_timed_run(sampler))
            disable_tracing()
            trace_events = len(tracer.events)
            tracer.reset()
            profiled.append(_timed_run(sampler, profile=True))
            stream_base.append(_timed_stream_run(sampler))
            configure_event_log(path=obs_sink, level="debug")
            obs_on.append(
                _timed_stream_run(sampler, recorder=FlightRecorder("bench"))
            )
            get_event_log().close()
            base2.append(_timed_run(sampler))

    off_s, off2_s = _median(base), _median(base2)
    stats_s, trace_s = _median(stats_on), _median(traced)
    profile_s = _median(profiled)
    stream_s, obs_s = _median(stream_base), _median(obs_on)
    noise_pct = abs(off2_s - off_s) / off_s * 100.0
    # "Telemetry off" overhead: the armed-but-disabled code paths, i.e.
    # the second off run measured against the first.
    off_overhead_pct = (off2_s - off_s) / off_s * 100.0
    stats_overhead_pct = (stats_s - off_s) / off_s * 100.0
    trace_overhead_pct = (trace_s - off_s) / off_s * 100.0
    profile_overhead_pct = (profile_s - off_s) / off_s * 100.0
    # Event log + flight recorder are measured against the *streamed*
    # baseline -- they only run on the serve path, which streams chunks.
    obslog_overhead_pct = (obs_s - stream_s) / stream_s * 100.0

    report(
        f"Telemetry overhead -- GMM, {NUM_SAMPLES} sweeps, "
        f"median of {REPEATS}",
        format_table(
            ["variant", "wall s", "overhead"],
            [
                ["telemetry off", f"{off_s:.3f}", "baseline"],
                ["telemetry off (re-run)", f"{off2_s:.3f}",
                 f"{off_overhead_pct:+.2f}%"],
                ["collect_stats=True", f"{stats_s:.3f}",
                 f"{stats_overhead_pct:+.2f}%"],
                ["tracing enabled", f"{trace_s:.3f}",
                 f"{trace_overhead_pct:+.2f}%"],
                ["profile=True", f"{profile_s:.3f}",
                 f"{profile_overhead_pct:+.2f}%"],
                ["streamed chunks (serve path)", f"{stream_s:.3f}",
                 "stream baseline"],
                ["event log + flight recorder", f"{obs_s:.3f}",
                 f"{obslog_overhead_pct:+.2f}% vs stream"],
            ],
        ),
    )

    RESULTS_JSON.write_text(
        json.dumps(
            {
                "num_samples": NUM_SAMPLES,
                "repeats": REPEATS,
                "telemetry_off_s": off_s,
                "telemetry_off_rerun_s": off2_s,
                "collect_stats_s": stats_s,
                "tracing_s": trace_s,
                "profile_s": profile_s,
                "trace_events_per_run": trace_events,
                # The acceptance number: cost of the disabled telemetry
                # code paths, i.e. run-to-run delta of the off path.
                "telemetry_off_overhead_pct": off_overhead_pct,
                "noise_floor_pct": noise_pct,
                "collect_stats_overhead_pct": stats_overhead_pct,
                "tracing_overhead_pct": trace_overhead_pct,
                # Profiler off-path cost is inside the off-vs-off number
                # (the sweep loop's one `profiler is None` check); this
                # is the on-path price of the timer brackets + wrappers.
                "profile_overhead_pct": profile_overhead_pct,
                # Serve-path observability: streamed-chunk baseline vs
                # event log armed (JSON-lines sink, debug level) plus a
                # flight recorder fed every chunk.  Their *off* path --
                # one `enabled` check per chunk / per run -- is inside
                # the off-vs-off acceptance number like the profiler's.
                "stream_s": stream_s,
                "obslog_flight_s": obs_s,
                "obslog_flight_overhead_pct": obslog_overhead_pct,
                "max_off_overhead_pct": MAX_OFF_OVERHEAD_PCT,
            },
            indent=2,
        )
    )

    assert off_overhead_pct <= MAX_OFF_OVERHEAD_PCT, (
        f"telemetry-off path regressed {off_overhead_pct:.2f}% "
        f"(budget {MAX_OFF_OVERHEAD_PCT}%)"
    )
    # Recording itself must stay cheap relative to the generated-code
    # density evaluations that dominate a sweep.
    assert stats_overhead_pct <= 25.0
    # The profiler's on-path brackets are two perf_counter reads per
    # update plus one per wrapped decl call -- cheap, but not free.
    assert profile_overhead_pct <= 50.0
    # The armed event log writes a handful of JSON lines per *chunk*
    # (not per sweep) and the flight recorder appends one dict to a
    # bounded deque per chunk -- amortised across chunk_size sweeps
    # this must stay well under the per-sweep instrumentation costs.
    assert obslog_overhead_pct <= 25.0
