"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; on
offline boxes without it, ``python setup.py develop`` (or ``pip install
-e . --no-build-isolation --config-settings editable_mode=compat``)
installs the package from ``pyproject.toml`` metadata via this shim.
"""

from setuptools import setup

setup()
