"""Compositional MCMC: comparing schedules on the same model.

The same HGMM is fit with four different compositions of base updates
(the paper's Figure 10 setup): all-Gibbs, Elliptical Slice on the
means, HMC on the means, and reflective-slice on the means.  The
schedule language lets you mix updates freely; the compiler validates
each request (try asking for `Gibbs` on a non-conjugate variable and it
will refuse).

Run:  python examples/custom_schedules.py
"""

import time

import numpy as np

import repro as AugurV2Lib
from repro.errors import ScheduleError
from repro.eval.datasets import hgmm_synthetic
from repro.eval.metrics import mixture_log_predictive
from repro.eval.models import HGMM

SCHEDULES = {
    "all Gibbs": "Gibbs pi (*) Gibbs mu (*) Gibbs Sigma (*) Gibbs z",
    "ESlice means": "Gibbs pi (*) ESlice mu (*) Gibbs Sigma (*) Gibbs z",
    "HMC means": "Gibbs pi (*) HMC[steps=8, step_size=0.05] mu (*) Gibbs Sigma (*) Gibbs z",
    "Slice means": "Gibbs pi (*) Slice mu (*) Gibbs Sigma (*) Gibbs z",
}


def main():
    data = hgmm_synthetic(k=3, d=2, n=400, seed=5)
    hypers = (3, 400, np.ones(3), np.zeros(2), np.eye(2) * 100.0, 4.0, np.eye(2))

    print(f"{'schedule':14s} {'seconds':>8s} {'holdout log-pred':>18s}")
    for name, sched in SCHEDULES.items():
        aug = AugurV2Lib.Infer(HGMM)
        aug.setUserSched(sched)
        aug.setSeed(0)
        aug.compile(*hypers)(data.y)
        t0 = time.perf_counter()
        samples = aug.sample(numSamples=60, burnIn=20)
        secs = time.perf_counter() - t0
        last = {k: samples[k][-1] for k in ("mu", "Sigma", "pi")}
        lp = mixture_log_predictive(
            data.holdout, last["mu"], last["Sigma"], last["pi"]
        )
        print(f"{name:14s} {secs:8.2f} {lp:18.1f}")

    # The compiler checks schedules: Gibbs needs a conjugacy relation.
    aug = AugurV2Lib.Infer(
        """
        (N, lam) => {
          param v ~ Exponential(lam) ;
          data y[n] ~ Normal(0.0, v) for n <- 0 until N ;
        }
        """
    )
    aug.setUserSched("Gibbs v")
    try:
        aug.compile(100, 1.0)(np.random.default_rng(0).normal(size=100))
    except ScheduleError as e:
        print(f"\nschedule rejected as expected: {e}")


if __name__ == "__main__":
    main()
