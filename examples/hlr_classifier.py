"""Hierarchical logistic regression: building a Bayesian classifier.

The Section 7.2 HLR model: a shared prior variance (Exponential prior),
a bias, and a weight vector, with Bernoulli-logit observations.  No
conjugacy exists here, so the heuristic scheduler picks a blocked HMC
update over all three (continuous) parameters, log-transforming the
positive variance automatically.

Run:  python examples/hlr_classifier.py
"""

import numpy as np

import repro as AugurV2Lib
from repro.eval.datasets import german_credit_like
from repro.eval.models import HLR


def main():
    train = german_credit_like(n=600, d=12, seed=1)
    test = german_credit_like(n=300, d=12, seed=2)

    with AugurV2Lib.Infer(HLR) as aug:
        # Explicit integrator settings via schedule options.
        aug.setUserSched("HMC[steps=12, step_size=0.02] (sigma2, b, theta)")
        aug.setSeed(0)
        aug.compile(train.n, train.d, 1.0, train.x)(train.y)
        samples = aug.sample(numSamples=300, burnIn=150)

    theta = samples.array("theta").mean(axis=0)
    b = float(samples.array("b").mean())
    sigma2 = samples.array("sigma2")
    print(f"posterior sigma^2: mean={sigma2.mean():.3f} sd={sigma2.std():.3f}")
    print(f"acceptance rates: {samples.acceptance}")

    logits = test.x @ theta + b
    pred = (logits > 0).astype(int)
    acc = float((pred == test.y).mean())
    base = max(test.y.mean(), 1 - test.y.mean())
    print(f"held-out accuracy: {acc:.3f} (majority baseline {base:.3f})")

    # Posterior predictive probabilities for a few test points.
    theta_draws = samples.array("theta")
    b_draws = samples.array("b")
    probs = 1 / (1 + np.exp(-(test.x[:5] @ theta_draws.T + b_draws)))
    for i, p in enumerate(probs.mean(axis=1)):
        print(f"  point {i}: P(y=1) = {p:.3f}  (true y = {test.y[i]})")


if __name__ == "__main__":
    main()
