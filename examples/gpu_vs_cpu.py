"""CPU vs. (simulated) GPU compilation of the same model.

Compiles the LDA Gibbs sampler for both targets, runs both, and breaks
down where the simulated device spends its time -- kernels, reductions,
atomic traffic.  Also demonstrates the summation-block ablation: turn
the Section 5.4 optimisation off and watch atomic contention blow up
on the HLR gradient.

Run:  python examples/gpu_vs_cpu.py
"""

import time

import numpy as np

import repro as AugurV2Lib
from repro.eval.datasets import adult_like, synthetic_corpus
from repro.eval.models import HLR, LDA


def lda_demo():
    k = 20
    corpus = synthetic_corpus(
        "demo", vocab_size=300, total_tokens=30_000, n_docs=150, seed=4
    )
    alpha = np.full(k, 0.5)
    beta = np.full(corpus.vocab_size, 0.2)
    args = (k, corpus.n_docs, corpus.vocab_size, corpus.doc_lengths, alpha, beta)

    cpu = AugurV2Lib.Infer(LDA)
    cpu.setCompileOpt(AugurV2Lib.Opt(target="cpu"))
    cpu.compile(*args)(corpus.w)
    t0 = time.perf_counter()
    cpu.sample(numSamples=10, collect=("phi",))
    cpu_s = time.perf_counter() - t0

    gpu = AugurV2Lib.Infer(LDA)
    gpu.setCompileOpt(AugurV2Lib.Opt(target="gpu"))
    gpu.compile(*args)(corpus.w)
    dev = gpu.sampler.device
    dev.reset()
    gpu.sample(numSamples=10, collect=("phi",))

    print(f"LDA ({corpus.n_tokens} tokens, K={k}), 10 sweeps:")
    print(f"  CPU wall time:        {cpu_s:8.3f} s")
    print(f"  GPU simulated time:   {dev.elapsed:8.5f} s")
    s = dev.stats
    print(
        f"  device breakdown: {s.kernels_launched} kernels "
        f"({s.par_time:.5f}s par, {s.atomic_time:.5f}s atomics, "
        f"{s.reduce_time:.5f}s reductions, {s.seq_time:.5f}s sequential)"
    )


def sumblk_ablation_demo():
    data = adult_like(n=20_000, d=14)
    args = (data.n, data.d, 1.0, data.x)
    print("\nHLR gradient on Adult-like data (the Section 5.4 story):")
    for label, opt in (
        ("sumBlk conversion ON ", AugurV2Lib.Opt(target="gpu")),
        ("sumBlk conversion OFF", AugurV2Lib.Opt(target="gpu", sum_block_conversion=False)),
    ):
        aug = AugurV2Lib.Infer(HLR)
        aug.setCompileOpt(opt)
        aug.setUserSched("HMC[steps=5, step_size=0.01] (sigma2, b, theta)")
        aug.compile(*args)(data.y)
        dev = aug.sampler.device
        dev.reset()
        aug.sample(numSamples=3, collect=("b",))
        print(
            f"  {label}: {dev.elapsed:8.5f} device-s "
            f"(atomics {dev.stats.atomic_time:.5f}s)"
        )


if __name__ == "__main__":
    lda_demo()
    sumblk_ablation_demo()
