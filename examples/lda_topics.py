"""Latent Dirichlet Allocation: inferring topics from a corpus.

The Section 7.2 LDA model with ragged per-document token comprehensions.
The heuristic scheduler derives Gibbs updates for everything: conjugate
Dirichlet-Categorical updates for the document-topic and topic-word
distributions (with the categorical-indexing rewrite producing the
guard-inverted count statistics), and enumeration Gibbs for the token
assignments.

Run:  python examples/lda_topics.py
"""

import numpy as np

import repro as AugurV2Lib
from repro.eval.datasets import synthetic_corpus
from repro.eval.models import LDA


def main():
    k = 5
    corpus = synthetic_corpus(
        "demo", vocab_size=60, total_tokens=8000, n_docs=80,
        n_topics_true=k, seed=3,
    )
    alpha = np.full(k, 0.5)
    beta = np.full(corpus.vocab_size, 0.2)

    with AugurV2Lib.Infer(LDA) as aug:
        aug.setSeed(7)
        aug.compile(k, corpus.n_docs, corpus.vocab_size, corpus.doc_lengths, alpha, beta)(
            corpus.w
        )
        print("derived schedule:", aug.schedule_description())
        samples = aug.sample(numSamples=30, burnIn=30, collect=("phi", "theta"))

    phi = samples.array("phi")[-1].reshape(k, corpus.vocab_size)
    print(f"\ntop words per topic ({corpus.n_tokens} tokens, V={corpus.vocab_size}):")
    for t in range(k):
        top = np.argsort(phi[t])[::-1][:6]
        words = ", ".join(f"w{w}({phi[t, w]:.2f})" for w in top)
        print(f"  topic {t}: {words}")

    theta = samples.array("theta")[-1]
    print("\nmost concentrated documents:")
    conc = theta.max(axis=1)
    for d in np.argsort(conc)[::-1][:3]:
        print(f"  doc {d}: dominant topic {theta[d].argmax()} at {conc[d]:.2f}")


if __name__ == "__main__":
    main()
