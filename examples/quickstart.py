"""Quickstart: the paper's Figure 2 end to end.

Fits a Gaussian Mixture Model to synthetic 2-D data with the exact
workflow from the paper -- load data, configure the compiler, pick a
compositional MCMC schedule (Elliptical Slice on the cluster means,
Gibbs on the assignments), compile at runtime, and draw posterior
samples.

Run:  python examples/quickstart.py
      python examples/quickstart.py --profile --explain --report report.html
"""

import argparse
import json

import numpy as np

import repro as AugurV2Lib

GMM_MODEL = """
(K, N, mu_0, Sigma_0, pis, Sigma) => {
  param mu[k] ~ MvNormal(mu_0, Sigma_0)
    for k <- 0 until K ;
  param z[n] ~ Categorical(pis)
    for n <- 0 until N ;
  data x[n] ~ MvNormal(mu[z[n]], Sigma)
    for n <- 0 until N ;
}
"""


def load_gmm_data(seed=0, n=400):
    """Synthetic stand-in for the paper's `load_gmm_data('/path/to/data')`."""
    rng = np.random.default_rng(seed)
    centres = np.array([[-4.0, 0.0], [4.0, 2.0], [0.0, -4.0]])
    z = rng.integers(0, 3, size=n)
    return centres[z] + rng.normal(0, 0.6, size=(n, 2)), centres


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--profile", action="store_true",
        help="attribute sweep wall-time per update / decl / model statement",
    )
    ap.add_argument(
        "--explain", action="store_true",
        help="print the compiler decision ledger after compilation",
    )
    ap.add_argument(
        "--explain-json", metavar="FILE",
        help="write the decision ledger as JSON to FILE",
    )
    ap.add_argument(
        "--report", metavar="FILE",
        help="write the self-contained HTML inference report (+ .json twin)",
    )
    args = ap.parse_args(argv)

    # Part 1: Load data.
    x, true_centres = load_gmm_data()
    N, D = x.shape
    K = 3
    mu0 = np.zeros(D)
    S0 = np.eye(D) * 25.0
    S = np.eye(D) * 0.36
    pis = np.full(K, 1.0 / K)

    # Part 2: Invoke AugurV2.
    with AugurV2Lib.Infer(GMM_MODEL) as aug:
        opt = AugurV2Lib.Opt(target="cpu")
        aug.setCompileOpt(opt)
        sched = "ESlice mu (*) Gibbs z"
        aug.setUserSched(sched)
        aug.setSeed(42)
        aug.compile(K, N, mu0, S0, pis, S)(x)
        if args.explain:
            print(aug.explain())
        if args.explain_json:
            with open(args.explain_json, "w") as f:
                json.dump(aug.explain_json(), f, indent=2)
            print(f"wrote {args.explain_json}")
        want_profile = args.profile or bool(args.report)
        samples = aug.sample(
            numSamples=200, burnIn=50,
            collect_stats=bool(args.report), profile=want_profile,
        )

    print(f"compiled in {aug.compile_seconds*1e3:.1f} ms; schedule: {sched}")
    if args.profile and samples.profile is not None:
        print(samples.profile.table(aug.sampler.source_map))
    if args.report:
        from repro.telemetry.report import write_report

        write_report(args.report, aug.sampler, samples)
        print(f"wrote {args.report}")
    mu_mean = samples.array("mu").mean(axis=0)
    print("posterior mean cluster centres:")
    for row in mu_mean:
        print(f"  ({row[0]: .2f}, {row[1]: .2f})")
    print("true centres:")
    for row in true_centres:
        print(f"  ({row[0]: .2f}, {row[1]: .2f})")
    # Most likely assignment per point (the introduction's query).
    z_draws = samples.array("z")
    map_z = np.apply_along_axis(
        lambda col: np.bincount(col, minlength=3).argmax(), 0, z_draws
    )
    sizes = np.bincount(map_z, minlength=3)
    print(f"MAP cluster sizes: {sizes.tolist()}")


if __name__ == "__main__":
    main()
