"""A tour of the compiler pipeline, IL by IL.

Walks one model (the GMM) through every intermediate language the paper
describes -- Density IL, symbolic conditionals with the factoring and
categorical-indexing rewrites, the Kernel IL, generated Low++ update
code, the Blk IL with its optimisations, and finally the emitted
backend source.

Run:  python examples/inspect_compiler.py
"""

import numpy as np

from repro.core.blk.lower import lower_to_blk
from repro.core.blk.optimize import optimize_blocks
from repro.core.compiler import compile_model
from repro.core.density.conditionals import conditional
from repro.core.density.lower import factorize, lower_model
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.frontend.typecheck import type_of_value
from repro.core.kernel.conjugacy import detect_conjugacy
from repro.core.kernel.heuristic import heuristic_schedule
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate
from repro.eval.models import GMM


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    rng = np.random.default_rng(0)
    hypers = {
        "K": 3, "N": 500, "mu_0": np.zeros(2), "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(3, 1 / 3), "Sigma": np.eye(2) * 0.25,
    }
    x = rng.normal(size=(500, 2))

    banner("1. Surface model (Figure 1)")
    model = parse_model(GMM)
    print(model)

    banner("2. Density IL (Section 3.1)")
    dm = lower_model(model)
    print(dm)

    banner("3. Symbolic conditionals (Section 3.3)")
    fd = factorize(dm)
    info = analyze_model(model, {k: type_of_value(v) for k, v in hypers.items()})
    for var in ("mu", "z"):
        print(conditional(fd, var, info))
        print()

    banner("4. Kernel IL (Section 4.1) -- heuristic selection")
    kernel = heuristic_schedule(fd, info)
    print(kernel)

    banner("5. Low++ update code (Section 4.3-4.4)")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    print(code.decl)
    print("\nworkspaces:", ", ".join(str(w) for w in code.workspaces))

    banner("6. Blk IL (Section 5.3-5.4)")
    blk = lower_to_blk(code.decl)
    print(blk)
    print("\nafter optimisation (with runtime sizes):")
    print(optimize_blocks(blk, hypers))

    banner("7. Generated backend source (the Cuda/C analogue)")
    sampler = compile_model(GMM, hypers, {"x": x})
    src = sampler.source
    start = src.index("def gibbs_mu")
    end = src.index("def ", start + 10)
    print(src[start:end])

    banner("8. Allocation plan (Section 5.2 size inference)")
    print(sampler.plan.describe())


if __name__ == "__main__":
    main()
